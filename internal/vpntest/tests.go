package vpntest

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"time"

	"vpnscope/internal/capture"
	"vpnscope/internal/dnssim"
	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
	"vpnscope/internal/psl"
	"vpnscope/internal/websim"
)

// ---------------------------------------------------------------------
// §5.3.1 — DNS manipulation
// ---------------------------------------------------------------------

// DNSDiff records one disagreement between the connection's resolver
// and the trusted reference answer.
type DNSDiff struct {
	Host       string
	VPNAnswer  netip.Addr
	RefAnswer  netip.Addr
	WhoisOrg   string
	WhoisASN   int
	Suspicious bool
}

// DNSManipulationResult is the DNS-manipulation test output.
type DNSManipulationResult struct {
	Queried int
	Diffs   []DNSDiff
}

// Manipulated reports whether any suspicious difference was found.
func (r *DNSManipulationResult) Manipulated() bool {
	for _, d := range r.Diffs {
		if d.Suspicious {
			return true
		}
	}
	return false
}

// RunDNSManipulation resolves the check hosts via the connection's
// configured resolver and via a trusted public resolver, then inspects
// WHOIS for any disagreement (§5.3.1 "DNS Manipulation").
func RunDNSManipulation(env *Env) (*DNSManipulationResult, error) {
	res := &DNSManipulationResult{}
	if len(env.Cfg.PublicResolvers) == 0 {
		return nil, errors.New("vpntest: no public resolver configured")
	}
	ref := env.Cfg.PublicResolvers[0]
	for _, host := range env.Cfg.DNSCheckHosts {
		res.Queried++
		vpnAns, err := env.Client.Resolve(host, false)
		if err != nil {
			continue // unreliable path; skip, as the paper's runs did
		}
		refAns, err := env.Client.ResolveVia(ref, host, false)
		if err != nil {
			refAns = env.Baseline.DNSAnswers[host]
		}
		if vpnAns == refAns {
			continue
		}
		diff := DNSDiff{Host: host, VPNAnswer: vpnAns, RefAnswer: refAns}
		if env.Cfg.Whois != nil {
			if blk, ok := env.Cfg.Whois(vpnAns); ok {
				diff.WhoisOrg = blk.Org
				diff.WhoisASN = blk.ASN
			}
		}
		// The paper's heuristic: an answer pointing outside the site's
		// hosting organization is suspicious; a human then confirms.
		refOrg := ""
		if env.Cfg.Whois != nil {
			if blk, ok := env.Cfg.Whois(refAns); ok {
				refOrg = blk.Org
			}
		}
		diff.Suspicious = diff.WhoisOrg != refOrg
		res.Diffs = append(res.Diffs, diff)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// §5.3.1 — DOM and request collection
// ---------------------------------------------------------------------

// Redirection is a detected cross-domain HTTP redirect (§6.1.1).
type Redirection struct {
	FromURL     string
	Destination string // final unrelated URL
	Status      int
}

// Injection is detected third-party content in a page (§6.1.3).
type Injection struct {
	PageURL       string
	InjectedHosts []string
	// Snippet is a short excerpt of injected markup for the human
	// analyst.
	Snippet string
}

// DOMResult is the DOM/request-collection output.
type DOMResult struct {
	PagesLoaded  int
	PagesFailed  int
	Redirections []Redirection
	Injections   []Injection
}

// RunDOMCollection loads every DOM-test page, recording redirect chains
// to unrelated domains and content not on the baseline whitelist.
func RunDOMCollection(env *Env) (*DOMResult, error) {
	res := &DOMResult{}
	for _, pageURL := range env.Cfg.DOMSiteURLs {
		final, hosts, dom, err := env.Client.LoadPage(pageURL)
		if err != nil {
			res.PagesFailed++
			continue
		}
		res.PagesLoaded++

		origHost := hostOf(pageURL)
		finalHost := hostOf(final.URL)
		if finalHost != "" && !psl.Related(origHost, finalHost, nil) {
			res.Redirections = append(res.Redirections, Redirection{
				FromURL:     pageURL,
				Destination: final.URL,
				Status:      final.Response.Status,
			})
			continue // a censored page's content is the censor's, not the site's
		}

		// Injection: any loaded host missing from the baseline
		// whitelist for this page.
		whitelist := env.Baseline.ResourceHosts[pageURL]
		var injected []string
		for _, h := range hosts {
			if !whitelist[h] {
				injected = append(injected, h)
			}
		}
		if len(injected) > 0 || dom != env.Baseline.DOM[pageURL] {
			inj := Injection{PageURL: pageURL, InjectedHosts: injected}
			inj.Snippet = diffSnippet(env.Baseline.DOM[pageURL], dom)
			// Only report when the DOM actually changed; flaky
			// subresource fetches alone are not manipulation.
			if dom != env.Baseline.DOM[pageURL] {
				res.Injections = append(res.Injections, inj)
			}
		}
	}
	return res, nil
}

// diffSnippet returns a short excerpt of what got added to a document.
func diffSnippet(base, got string) string {
	// Walk to the first difference, then excerpt.
	i := 0
	for i < len(base) && i < len(got) && base[i] == got[i] {
		i++
	}
	if i >= len(got) {
		return ""
	}
	end := i + 120
	if end > len(got) {
		end = len(got)
	}
	return strings.TrimSpace(got[i:end])
}

// ---------------------------------------------------------------------
// §5.3.1 — TLS interception and downgrade detection
// ---------------------------------------------------------------------

// CertAnomaly is one certificate that failed validation or differs from
// the baseline.
type CertAnomaly struct {
	Host        string
	Fingerprint uint64
	Issuer      string
	VerifyError string
	// BaselineMismatch: the cert verifies but is not the one the
	// ground-truth vantage saw (possible targeted MITM).
	BaselineMismatch bool
}

// BlockedLoad is an HTTP page load that came back blocked (403/empty)
// where the baseline succeeded — the §6.1.2 VPN-discrimination signal.
type BlockedLoad struct {
	Host   string
	Status int
}

// TLSResult is the TLS test output.
type TLSResult struct {
	HostsProbed  int
	Intercepted  []CertAnomaly
	Downgraded   []string // hosts answered in cleartext where TLS was expected
	Blocked      []BlockedLoad
	Redirections []Redirection // censorship seen in the HTTP step
	Unreachable  int
}

// RunTLS performs the two-step TLS test: direct negotiation with
// certificate validation against the trust pool and baseline, then an
// HTTP load following redirects (§5.3.1 "TLS Interception and Downgrade
// Detection").
func RunTLS(env *Env) (*TLSResult, error) {
	env.Cfg.derived()
	res := &TLSResult{}
	for i, host := range env.Cfg.TLSHosts {
		res.HostsProbed++
		urls := &env.Cfg.tlsURLs[i]

		chain, err := env.Client.Get(urls.https)
		if err != nil {
			res.Unreachable++
			continue
		}
		final := chain[len(chain)-1]
		switch {
		case final.Downgraded:
			res.Downgraded = append(res.Downgraded, host)
		case final.TLS:
			anomaly := CertAnomaly{
				Host:        host,
				Fingerprint: final.Cert.Fingerprint(),
				Issuer:      final.Cert.Issuer,
			}
			if err := env.Cfg.TrustPool.Verify(final.Cert, host); err != nil {
				anomaly.VerifyError = err.Error()
				res.Intercepted = append(res.Intercepted, anomaly)
			} else if base, ok := env.Baseline.CertFingerprints[host]; ok && base != anomaly.Fingerprint {
				anomaly.BaselineMismatch = true
				res.Intercepted = append(res.Intercepted, anomaly)
			}
		}

		httpChain, err := env.Client.Get(urls.http)
		if err != nil {
			continue
		}
		httpFinal := httpChain[len(httpChain)-1]
		finalHost := hostOf(httpFinal.URL)
		if finalHost != "" && !psl.Related(host, finalHost, nil) {
			res.Redirections = append(res.Redirections, Redirection{
				FromURL:     urls.http,
				Destination: httpFinal.URL,
				Status:      httpFinal.Response.Status,
			})
			continue
		}
		if base := env.Baseline.FinalStatus[host]; base >= 200 && base < 400 {
			if s := httpFinal.Response.Status; s == 403 ||
				(s == 200 && len(httpFinal.Response.Body) == 0) {
				res.Blocked = append(res.Blocked, BlockedLoad{Host: host, Status: s})
			}
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------
// §6.2.1 — header-based transparent proxy detection
// ---------------------------------------------------------------------

// ProxyResult is the header-echo diff output.
type ProxyResult struct {
	// Modified: the server saw different bytes than we sent.
	Modified bool
	// HeadersAdded / HeadersChanged classify the modification.
	HeadersAdded   []string
	HeadersChanged []string
	// Regenerated: no headers added, but existing ones rewritten —
	// "consistent with parsing and subsequent regeneration".
	Regenerated bool
}

// RunProxyDetection sends a canary request to the echo service and
// diffs what the server saw against what we sent.
func RunProxyDetection(env *Env) (*ProxyResult, error) {
	host := hostOf(env.Cfg.EchoURL)
	addr, err := env.Client.Resolve(host, false)
	if err != nil {
		return nil, fmt.Errorf("vpntest: resolving echo host: %w", err)
	}
	req := websim.NewRequest("GET", host, "/")
	sent := req.Encode()
	raw, err := env.Stack.ExchangeTCP(addr, 80, sent)
	if err != nil {
		return nil, fmt.Errorf("vpntest: echo exchange: %w", err)
	}
	resp, err := websim.ParseResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("vpntest: echo response: %w", err)
	}
	res := &ProxyResult{}
	if bytes.Equal(resp.Body, sent) {
		return res, nil
	}
	res.Modified = true
	seen, err := websim.ParseRequest(resp.Body)
	if err != nil {
		// The server saw something we cannot even parse back — count
		// as modified with no classification.
		return res, nil
	}
	sentNames := map[string]string{}
	for _, h := range req.Headers {
		sentNames[strings.ToLower(h.Name)] = h.Name + ": " + h.Value
	}
	for _, h := range seen.Headers {
		key := strings.ToLower(h.Name)
		orig, ok := sentNames[key]
		switch {
		case !ok && !strings.EqualFold(h.Name, "Content-Length"):
			res.HeadersAdded = append(res.HeadersAdded, h.Name)
		case ok && orig != h.Name+": "+h.Value:
			res.HeadersChanged = append(res.HeadersChanged, h.Name)
		}
	}
	res.Regenerated = len(res.HeadersAdded) == 0
	return res, nil
}

// ---------------------------------------------------------------------
// §5.3.2 — infrastructure inference
// ---------------------------------------------------------------------

// OriginResult is the recursive-DNS-origins test output.
type OriginResult struct {
	TaggedName string
	Origins    []netip.Addr
	// OriginOrgs are the WHOIS orgs of the recursion origins.
	OriginOrgs []string
}

// RunRecursiveOrigin resolves a unique tagged hostname and reads back
// where recursion came from.
func RunRecursiveOrigin(env *Env) (*OriginResult, error) {
	tag := fmt.Sprintf("t%d-%s", env.Stack.Net.Clock.Now().Nanoseconds(), sanitizeLabel(env.VPLabel))
	name := tag + "." + env.Cfg.ProbeDomain
	if _, err := env.Client.Resolve(name, false); err != nil {
		return nil, fmt.Errorf("vpntest: tagged resolution: %w", err)
	}
	res := &OriginResult{TaggedName: name}
	if env.Cfg.OriginsOf != nil {
		res.Origins = env.Cfg.OriginsOf(name)
	}
	for _, o := range res.Origins {
		if env.Cfg.Whois != nil {
			if blk, ok := env.Cfg.Whois(o); ok {
				res.OriginOrgs = append(res.OriginOrgs, blk.Org)
				continue
			}
		}
		res.OriginOrgs = append(res.OriginOrgs, "unknown")
	}
	return res, nil
}

func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := strings.Trim(b.String(), "-")
	if len(out) > 40 {
		out = out[:40]
	}
	if out == "" {
		out = "x"
	}
	return out
}

// PingSample is one landmark measurement.
type PingSample struct {
	Landmark string
	Country  geo.Country
	RTTms    float64
}

// PingResult is the ping/traceroute data collection output (the raw
// material of Figure 9).
type PingResult struct {
	Samples []PingSample
	Failed  int
	// SelfRTT is the RTT of pinging the connection's own egress
	// address through the tunnel — an estimate of the constant
	// client-to-vantage-point offset baked into every landmark sample.
	// Negative when unavailable.
	SelfRTT float64
}

// Vector returns the RTTs in landmark order, aligned with the config's
// Landmarks slice; missing samples are NaN-free (-1).
func (r *PingResult) Vector(cfg *Config) []float64 {
	byName := make(map[string]float64, len(r.Samples))
	for _, s := range r.Samples {
		byName[s.Landmark] = s.RTTms
	}
	out := make([]float64, len(cfg.Landmarks))
	for i, lm := range cfg.Landmarks {
		if v, ok := byName[lm.Name]; ok {
			out[i] = v
		} else {
			out[i] = -1
		}
	}
	return out
}

// MinSample returns the landmark with the smallest RTT, which bounds
// the vantage point's physical location.
func (r *PingResult) MinSample() (PingSample, bool) {
	if len(r.Samples) == 0 {
		return PingSample{}, false
	}
	best := r.Samples[0]
	for _, s := range r.Samples[1:] {
		if s.RTTms < best.RTTms {
			best = s
		}
	}
	return best, true
}

// RunPingSweep pings every landmark through the connection, plus the
// connection's own egress address to estimate the client-to-vantage
// offset.
func RunPingSweep(env *Env) (*PingResult, error) {
	res := &PingResult{SelfRTT: -1}
	for _, lm := range env.Cfg.Landmarks {
		rtt, ok := minPing(env, lm.Addr)
		if !ok {
			res.Failed++
			continue
		}
		res.Samples = append(res.Samples, PingSample{
			Landmark: lm.Name,
			Country:  lm.City.Country,
			RTTms:    rtt,
		})
	}
	if egress, err := env.EgressIP(); err == nil {
		if rtt, ok := minPing(env, egress); ok {
			res.SelfRTT = rtt
		}
	}
	return res, nil
}

// minPing takes the minimum of three ping samples — standard practice
// to strip queueing jitter and keep the propagation signal Figure 9
// depends on.
func minPing(env *Env, dst netip.Addr) (float64, bool) {
	best := -1.0
	for i := 0; i < 3; i++ {
		rtt, err := env.Stack.Ping(dst)
		if err != nil {
			continue
		}
		if best < 0 || rtt < best {
			best = rtt
		}
	}
	return best, best >= 0
}

// TraceResult is the traceroute collection output (§5.3.2 "Ping and
// traceroute data").
type TraceResult struct {
	// Paths maps a landmark name to its TTL-ladder hops as seen from
	// inside the connection.
	Paths map[string][]netsim.TracerouteHop
}

// FirstHopBeyondGateway returns, for a landmark, the first responding
// hop after the tunnel-internal gateway — the edge of the vantage
// point's real network.
func (r *TraceResult) FirstHopBeyondGateway(landmark string) (netip.Addr, bool) {
	hops := r.Paths[landmark]
	for i, h := range hops {
		if !h.Addr.IsValid() {
			continue
		}
		if h.Addr.Is4() && h.Addr.As4()[0] == 10 {
			continue // tunnel-internal gateway
		}
		_ = i
		return h.Addr, true
	}
	return netip.Addr{}, false
}

// RunTraceroutes collects TTL-ladder paths to a handful of landmarks
// (the paper traced anycast resolvers and DNS roots). To bound runtime
// it uses the first maxTargets landmarks.
func RunTraceroutes(env *Env, maxTargets int) (*TraceResult, error) {
	if maxTargets <= 0 {
		maxTargets = 3
	}
	res := &TraceResult{Paths: make(map[string][]netsim.TracerouteHop)}
	for i, lm := range env.Cfg.Landmarks {
		if i >= maxTargets {
			break
		}
		hops, err := env.Stack.Traceroute(lm.Addr, 16)
		if err != nil {
			continue
		}
		res.Paths[lm.Name] = hops
	}
	if len(res.Paths) == 0 {
		return res, errors.New("vpntest: no traceroute completed")
	}
	return res, nil
}

// GeoResult is the geolocation-API test output.
type GeoResult struct {
	EgressIP netip.Addr
	// APICountry is what the Google-like geolocation service says.
	APICountry geo.Country
	APIFound   bool
	// WhoisBlock is the egress address's registration data.
	WhoisBlock netsim.Block
	WhoisFound bool
}

// RunGeolocation discovers the egress IP and asks the geolocation API
// and WHOIS about it.
func RunGeolocation(env *Env) (*GeoResult, error) {
	egress, err := env.EgressIP()
	if err != nil {
		return nil, err
	}
	res := &GeoResult{EgressIP: egress}
	if env.Cfg.GeoAPI != nil {
		res.APICountry, res.APIFound = env.Cfg.GeoAPI(egress)
	}
	if env.Cfg.Whois != nil {
		res.WhoisBlock, res.WhoisFound = env.Cfg.Whois(egress)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// §5.3.3 — leakage tests
// ---------------------------------------------------------------------

// LeakResult is the DNS/IPv6 leakage test output.
type LeakResult struct {
	DNSLeak       bool
	DNSLeakCount  int
	IPv6Leak      bool
	IPv6LeakCount int
	IPv6Probes    int
}

// RunLeakTests makes scripted DNS queries and IPv6 connections, then
// scans the physical interface's capture for cleartext that should have
// been inside the tunnel.
func RunLeakTests(env *Env) (*LeakResult, error) {
	phys := env.Stack.Interface(netsim.PhysicalName)
	if phys == nil {
		return nil, errors.New("vpntest: no physical interface")
	}
	mark := phys.Sink.Len()

	// Scripted DNS: several queries to the system resolver and one to
	// each public resolver.
	for _, host := range env.Cfg.DNSCheckHosts {
		_, _ = env.Client.Resolve(host, false)
	}
	for _, r := range env.Cfg.PublicResolvers {
		_, _ = env.Client.ResolveVia(r, env.Cfg.DNSCheckHosts[0], false)
	}

	res := &LeakResult{}
	var v capture.PacketView
	for _, rec := range phys.Sink.Records()[mark:] {
		if rec.Dir != capture.DirOut {
			continue
		}
		// Sink records own their bytes, so the alias-not-copy view is
		// safe; ParseView matches the decoder pass byte for byte.
		if capture.ParseView(rec.Data, &v) == nil &&
			v.Transport == capture.TypeUDP && v.DstPort == 53 {
			res.DNSLeakCount++
		}
	}
	res.DNSLeak = res.DNSLeakCount > 0

	// IPv6 probes: direct connections to known v6 addresses. Probe in
	// sorted host order — map iteration order would otherwise vary the
	// virtual-time trace between identically seeded runs. The host list
	// and per-host request wires are prebuilt on the shared Config.
	mark = phys.Sink.Len()
	env.Cfg.derived()
	for i, host := range env.Cfg.sortedV6Hosts {
		res.IPv6Probes++
		_, _ = env.Stack.ExchangeTCP(env.Cfg.IPv6ProbeHosts[host], 80, env.Cfg.v6ProbeReqs[i])
	}
	for _, rec := range phys.Sink.Records()[mark:] {
		if rec.Dir == capture.DirOut && len(rec.Data) > 0 && rec.Data[0]>>4 == 6 {
			res.IPv6LeakCount++
		}
	}
	res.IPv6Leak = res.IPv6LeakCount > 0
	return res, nil
}

func packetFirstLayer(data []byte) capture.LayerType {
	if len(data) > 0 && data[0]>>4 == 6 {
		return capture.TypeIPv6
	}
	return capture.TypeIPv4
}

// WebRTCResult is the WebRTC address-leak audit output (the §7
// vulnerability the paper says it systematically checks).
type WebRTCResult struct {
	// Revealed are the candidate addresses the probe page learned.
	Revealed []netip.Addr
	// RealAddressExposed: a non-private address different from the
	// connection's egress leaked — the user's actual network identity.
	RealAddressExposed bool
	// EgressOnly: masking worked; only the tunnel-visible identity was
	// revealed.
	EgressOnly bool
}

// RunWebRTCLeak loads the ICE-gathering probe page with a WebRTC-capable
// "browser": unless masking is enabled on the stack, every local
// interface address is gathered as a host candidate and reported to the
// page, which reflects what it saw.
func RunWebRTCLeak(env *Env) (*WebRTCResult, error) {
	probeHost := hostOf(env.Cfg.WebRTCProbeURL)
	if probeHost == "" {
		return nil, errors.New("vpntest: no WebRTC probe configured")
	}
	chain, err := env.Client.Get(env.Cfg.WebRTCProbeURL)
	if err != nil {
		return nil, fmt.Errorf("vpntest: loading WebRTC probe: %w", err)
	}
	page := chain[len(chain)-1].Response
	if !strings.Contains(string(page.Body), websim.WebRTCMarker) {
		return nil, errors.New("vpntest: probe page missing gathering marker")
	}

	// ICE gathering: host candidates are the local interface addresses
	// (unless masked); the server-reflexive candidate is whatever the
	// probe server sees as our source, which the report echoes anyway.
	var candidates []netip.Addr
	if !env.Stack.WebRTCMasked() {
		candidates = env.Stack.InterfaceAddrs()
	}
	parts := make([]string, len(candidates))
	for i, c := range candidates {
		parts[i] = c.String()
	}
	addr, err := env.Client.Resolve(probeHost, false)
	if err != nil {
		return nil, err
	}
	post := &websim.Request{
		Method:  "POST",
		Path:    "/report",
		Headers: []websim.Header{{Name: "Host", Value: probeHost}},
		Body:    []byte(strings.Join(parts, ",")),
	}
	raw, err := env.Stack.ExchangeTCP(addr, 80, post.Encode())
	if err != nil {
		return nil, err
	}
	resp, err := websim.ParseResponse(raw)
	if err != nil {
		return nil, err
	}

	egress, _ := env.EgressIP()
	res := &WebRTCResult{}
	for _, line := range strings.Split(string(resp.Body), "\n") {
		val, ok := strings.CutPrefix(line, "candidates=")
		if !ok {
			continue
		}
		for _, s := range strings.Split(val, ",") {
			a, err := netip.ParseAddr(strings.TrimSpace(s))
			if err != nil {
				continue
			}
			res.Revealed = append(res.Revealed, a)
			if a != egress && !a.IsPrivate() && !a.IsLinkLocalUnicast() {
				res.RealAddressExposed = true
			}
		}
	}
	res.EgressOnly = !res.RealAddressExposed
	return res, nil
}

// P2PResult is the §6.6 peer-exit detection output: DNS queries seen
// leaving the client's physical interface that the measurement suite
// never issued, the signature of the machine serving as an exit for
// other users' traffic.
type P2PResult struct {
	// UnexpectedQueries are the qnames of unattributable cleartext DNS
	// requests.
	UnexpectedQueries []string
	// AttributableLeaks counts cleartext queries the suite DID issue
	// (ordinary DNS leakage, reported separately by the leak test).
	AttributableLeaks int
}

// PeerExit reports the verdict: someone else's traffic left our link.
func (r *P2PResult) PeerExit() bool { return len(r.UnexpectedQueries) > 0 }

// RunP2PDetection scans the whole physical-interface capture for DNS
// queries whose names are outside the suite's own query universe
// (§5.3.4/§6.6: "we focus on identifying unexpected DNS requests to
// identify P2P traffic"). It also stirs the tunnel with a few keepalive
// pings first, since peer traffic rides on an active connection.
func RunP2PDetection(env *Env) (*P2PResult, error) {
	phys := env.Stack.Interface(netsim.PhysicalName)
	if phys == nil {
		return nil, errors.New("vpntest: no physical interface")
	}
	// Keepalives: give a peer-exit client the activity it piggybacks on.
	for i := 0; i < 10; i++ {
		for _, r := range env.Cfg.PublicResolvers {
			_, _ = env.Stack.Ping(r)
		}
	}
	legit := env.legitimateQueryNames()
	res := &P2PResult{}
	seen := map[string]bool{}
	var v capture.PacketView
	var msg dnssim.Message
	for _, rec := range phys.Sink.Records() {
		if rec.Dir != capture.DirOut {
			continue
		}
		// Sink records own their bytes, so the alias-not-copy view is
		// safe; ParseView matches the decoder pass byte for byte.
		if capture.ParseView(rec.Data, &v) != nil ||
			v.Transport != capture.TypeUDP || v.DstPort != 53 {
			continue
		}
		if err := dnssim.DecodeInto(&msg, v.Payload, env.Client.Intern); err != nil ||
			msg.Response || len(msg.Questions) == 0 {
			continue
		}
		name := msg.Questions[0].Name
		if legit(name) {
			res.AttributableLeaks++
			continue
		}
		if !seen[name] {
			seen[name] = true
			res.UnexpectedQueries = append(res.UnexpectedQueries, name)
		}
	}
	return res, nil
}

// legitimateQueryNames returns a predicate covering every hostname the
// suite itself may have resolved: the target corpora, infrastructure
// endpoints, and the tagged probe domain.
func (e *Env) legitimateQueryNames() func(string) bool {
	exact := e.Cfg.legitNames(e.Baseline)
	probe := strings.ToLower(e.Cfg.ProbeDomain)
	return func(name string) bool {
		name = strings.TrimSuffix(name, ".")
		// Names on the wire are lowercase in the common case; only
		// fold when needed so the probe avoids an allocation.
		if !isLowerASCII(name) {
			name = strings.ToLower(name)
		}
		if exact[name] {
			return true
		}
		return probe != "" && (name == probe || strings.HasSuffix(name, "."+probe))
	}
}

// isLowerASCII reports whether s contains no ASCII uppercase letters
// and no non-ASCII bytes (for which ToLower could also change bytes).
func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || ('A' <= c && c <= 'Z') {
			return false
		}
	}
	return true
}

// FailureResult is the tunnel-failure recovery test output.
type FailureResult struct {
	// Leaked: the probe host was reachable while the tunnel was
	// firewalled — the client failed open within the window.
	Leaked bool
	// SecondsToLeak is the virtual time until the first successful
	// direct contact (0 when no leak).
	SecondsToLeak float64
	Attempts      int
}

// RunTunnelFailure induces a tunnel failure by firewalling all outbound
// traffic except to the probe host, then repeatedly attempts to contact
// the probe for the configured window (§5.3.3 "Recovery from Tunnel
// Failure"). The firewall is removed before returning; the VPN client's
// state afterwards reflects however it handled the outage.
func RunTunnelFailure(env *Env) (*FailureResult, error) {
	window := time.Duration(env.Cfg.FailureWindowSeconds) * time.Second
	if window == 0 {
		window = 3 * time.Minute
	}
	probe := env.Cfg.TunnelFailureProbe
	host := hostOf(env.Cfg.TunnelFailureURL)
	env.Stack.SetAllowOnly([]netip.Addr{probe})
	defer env.Stack.SetAllowOnly(nil)

	res := &FailureResult{}
	clock := env.Stack.Net.Clock
	start := clock.Now()
	for clock.Now()-start < window {
		res.Attempts++
		req := websim.NewRequest("GET", host, "/")
		raw, err := env.Stack.ExchangeTCP(probe, 80, req.Encode())
		if err == nil && raw != nil {
			res.Leaked = true
			res.SecondsToLeak = (clock.Now() - start).Seconds()
			return res, nil
		}
		clock.Advance(5 * time.Second)
	}
	return res, nil
}
