package vpntest

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"vpnscope/internal/capture"
	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
	"vpnscope/internal/telemetry"
)

// TestTiming records one executed suite step's virtual-time cost.
// Collected only while telemetry is enabled, and excluded from result
// serialization (the campaign's committer folds timings into telemetry
// histograms instead), so enabling it cannot change result bytes.
type TestTiming struct {
	Test    string
	Virtual time.Duration
}

// VPReport is everything the suite learned about one vantage point —
// the per-vantage-point analogue of the paper's per-run logs and packet
// captures.
type VPReport struct {
	Provider       string
	VPLabel        string
	ClaimedCountry geo.Country
	StartedAt      time.Duration // virtual time
	FinishedAt     time.Duration

	Geo          *GeoResult
	DNS          *DNSManipulationResult
	DOM          *DOMResult
	TLS          *TLSResult
	Proxy        *ProxyResult
	Origin       *OriginResult
	Pings        *PingResult
	Traces       *TraceResult
	Leaks        *LeakResult
	WebRTC       *WebRTCResult
	P2P          *P2PResult
	Failure      *FailureResult
	// Metadata snapshot (§5.3.4): routes and resolvers at test time.
	Routes    []netsim.Route
	Resolvers []netip.Addr
	// Captures holds the per-interface packet traces recorded during
	// the run when SuiteOptions.CollectCaptures is set (§5.3.4:
	// "our normal testing also collects packet captures on the
	// hardware interface").
	Captures []capture.Record

	// Errors collects per-test failures without aborting the run.
	Errors []string

	// TestTimings holds per-test virtual durations for telemetry; only
	// populated while a telemetry sink is enabled and never serialized
	// with results (see TestTiming).
	TestTimings []TestTiming `json:"-"`
}

// WriteCaptures writes the run's packet trace in pcap format.
func (r *VPReport) WriteCaptures(w io.Writer) error {
	return capture.WritePcap(w, r.Captures)
}

// EgressIP returns the discovered egress address (zero when the geo
// step failed).
func (r *VPReport) EgressIP() netip.Addr {
	if r.Geo == nil {
		return netip.Addr{}
	}
	return r.Geo.EgressIP
}

// SuiteOptions selects which test groups run. The zero value runs
// everything, mirroring the paper's full ~45-minute per-vantage-point
// suite; PingOnly is the light sweep used for the >150 HideMyAss
// endpoints in §6.4.2.
type SuiteOptions struct {
	SkipDOM     bool
	SkipTLS     bool
	SkipLeaks   bool
	SkipFailure bool
	PingOnly    bool
	// CollectCaptures snapshots the run's full packet trace into the
	// report for offline analysis / pcap export.
	CollectCaptures bool
	// TestBudget is the per-test virtual-time allowance. A test that
	// burns more (e.g. every probe timing out under a fault) gets an
	// overrun note in Errors. Zero means unlimited.
	TestBudget time.Duration
	// SuiteBudget caps the whole run's virtual time: once exhausted,
	// remaining tests are skipped with a note rather than run. Zero
	// means unlimited.
	SuiteBudget time.Duration
}

// RunSuite executes the test suite against a connected environment and
// returns the vantage point's report. Individual test errors and panics
// are recorded, not fatal — dying vantage points were routine in the
// paper's data collection, and one misbehaving test must never take
// down a campaign.
func RunSuite(env *Env, opts SuiteOptions) *VPReport {
	r := &VPReport{
		Provider:       env.Provider,
		VPLabel:        env.VPLabel,
		ClaimedCountry: env.ClaimedCountry,
		StartedAt:      env.Stack.Net.Clock.Now(),
	}
	clock := env.Stack.Net.Clock
	start := clock.Now()
	collectTimings := telemetry.Active() != nil
	step := func(test string, fn func() error) {
		if opts.SuiteBudget > 0 && clock.Now()-start >= opts.SuiteBudget {
			r.Errors = append(r.Errors,
				fmt.Sprintf("%s: skipped: suite budget (%v) exhausted", test, opts.SuiteBudget))
			return
		}
		began := clock.Now()
		if err := runRecovered(fn); err != nil {
			r.Errors = append(r.Errors, fmt.Sprintf("%s: %v", test, err))
		}
		if collectTimings {
			r.TestTimings = append(r.TestTimings, TestTiming{Test: test, Virtual: clock.Now() - began})
		}
		if opts.TestBudget > 0 {
			if spent := clock.Now() - began; spent > opts.TestBudget {
				r.Errors = append(r.Errors,
					fmt.Sprintf("%s: exceeded per-test budget (spent %v of %v)", test, spent, opts.TestBudget))
			}
		}
	}

	// Geolocation first: it caches the egress address the ping sweep
	// uses for offset estimation.
	step("geo", func() error { var err error; r.Geo, err = RunGeolocation(env); return err })
	step("ping", func() error { var err error; r.Pings, err = RunPingSweep(env); return err })

	if !opts.PingOnly {
		r.Routes = env.Stack.Routes()
		r.Resolvers = env.Stack.Resolvers()

		step("dns-manipulation", func() error { var err error; r.DNS, err = RunDNSManipulation(env); return err })
		step("recursive-origin", func() error { var err error; r.Origin, err = RunRecursiveOrigin(env); return err })
		step("proxy-detection", func() error { var err error; r.Proxy, err = RunProxyDetection(env); return err })
		if !opts.SkipDOM {
			step("dom-collection", func() error { var err error; r.DOM, err = RunDOMCollection(env); return err })
		}
		if !opts.SkipTLS {
			step("tls", func() error { var err error; r.TLS, err = RunTLS(env); return err })
		}
		if !opts.SkipLeaks {
			step("leaks", func() error { var err error; r.Leaks, err = RunLeakTests(env); return err })
		}
		step("traceroute", func() error { var err error; r.Traces, err = RunTraceroutes(env, 3); return err })
		if env.Cfg.WebRTCProbeURL != "" {
			step("webrtc-leak", func() error { var err error; r.WebRTC, err = RunWebRTCLeak(env); return err })
		}
		step("p2p-detection", func() error { var err error; r.P2P, err = RunP2PDetection(env); return err })
		if !opts.SkipFailure {
			// Last: it may leave the client failed-open.
			step("tunnel-failure", func() error { var err error; r.Failure, err = RunTunnelFailure(env); return err })
		}
	}
	if opts.CollectCaptures {
		r.Captures = env.Stack.CaptureAll()
	}
	r.FinishedAt = env.Stack.Net.Clock.Now()
	return r
}

// runRecovered runs fn, converting a panic into a recorded error.
func runRecovered(fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("panic: %v", rec)
		}
	}()
	return fn()
}
