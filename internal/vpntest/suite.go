package vpntest

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"vpnscope/internal/capture"
	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
)

// VPReport is everything the suite learned about one vantage point —
// the per-vantage-point analogue of the paper's per-run logs and packet
// captures.
type VPReport struct {
	Provider       string
	VPLabel        string
	ClaimedCountry geo.Country
	StartedAt      time.Duration // virtual time
	FinishedAt     time.Duration

	Geo          *GeoResult
	DNS          *DNSManipulationResult
	DOM          *DOMResult
	TLS          *TLSResult
	Proxy        *ProxyResult
	Origin       *OriginResult
	Pings        *PingResult
	Traces       *TraceResult
	Leaks        *LeakResult
	WebRTC       *WebRTCResult
	P2P          *P2PResult
	Failure      *FailureResult
	// Metadata snapshot (§5.3.4): routes and resolvers at test time.
	Routes    []netsim.Route
	Resolvers []netip.Addr
	// Captures holds the per-interface packet traces recorded during
	// the run when SuiteOptions.CollectCaptures is set (§5.3.4:
	// "our normal testing also collects packet captures on the
	// hardware interface").
	Captures []capture.Record

	// Errors collects per-test failures without aborting the run.
	Errors []string
}

// WriteCaptures writes the run's packet trace in pcap format.
func (r *VPReport) WriteCaptures(w io.Writer) error {
	return capture.WritePcap(w, r.Captures)
}

// EgressIP returns the discovered egress address (zero when the geo
// step failed).
func (r *VPReport) EgressIP() netip.Addr {
	if r.Geo == nil {
		return netip.Addr{}
	}
	return r.Geo.EgressIP
}

// SuiteOptions selects which test groups run. The zero value runs
// everything, mirroring the paper's full ~45-minute per-vantage-point
// suite; PingOnly is the light sweep used for the >150 HideMyAss
// endpoints in §6.4.2.
type SuiteOptions struct {
	SkipDOM     bool
	SkipTLS     bool
	SkipLeaks   bool
	SkipFailure bool
	PingOnly    bool
	// CollectCaptures snapshots the run's full packet trace into the
	// report for offline analysis / pcap export.
	CollectCaptures bool
}

// RunSuite executes the test suite against a connected environment and
// returns the vantage point's report. Individual test errors are
// recorded, not fatal — dying vantage points were routine in the paper's
// data collection.
func RunSuite(env *Env, opts SuiteOptions) *VPReport {
	r := &VPReport{
		Provider:       env.Provider,
		VPLabel:        env.VPLabel,
		ClaimedCountry: env.ClaimedCountry,
		StartedAt:      env.Stack.Net.Clock.Now(),
	}
	note := func(test string, err error) {
		if err != nil {
			r.Errors = append(r.Errors, fmt.Sprintf("%s: %v", test, err))
		}
	}

	// Geolocation first: it caches the egress address the ping sweep
	// uses for offset estimation.
	var err error
	r.Geo, err = RunGeolocation(env)
	note("geo", err)
	r.Pings, err = RunPingSweep(env)
	note("ping", err)

	if !opts.PingOnly {
		r.Routes = env.Stack.Routes()
		r.Resolvers = env.Stack.Resolvers()

		r.DNS, err = RunDNSManipulation(env)
		note("dns-manipulation", err)
		r.Origin, err = RunRecursiveOrigin(env)
		note("recursive-origin", err)
		r.Proxy, err = RunProxyDetection(env)
		note("proxy-detection", err)
		if !opts.SkipDOM {
			r.DOM, err = RunDOMCollection(env)
			note("dom-collection", err)
		}
		if !opts.SkipTLS {
			r.TLS, err = RunTLS(env)
			note("tls", err)
		}
		if !opts.SkipLeaks {
			r.Leaks, err = RunLeakTests(env)
			note("leaks", err)
		}
		r.Traces, err = RunTraceroutes(env, 3)
		note("traceroute", err)
		if env.Cfg.WebRTCProbeURL != "" {
			r.WebRTC, err = RunWebRTCLeak(env)
			note("webrtc-leak", err)
		}
		r.P2P, err = RunP2PDetection(env)
		note("p2p-detection", err)
		if !opts.SkipFailure {
			// Last: it may leave the client failed-open.
			r.Failure, err = RunTunnelFailure(env)
			note("tunnel-failure", err)
		}
	}
	if opts.CollectCaptures {
		r.Captures = env.Stack.CaptureAll()
	}
	r.FinishedAt = env.Stack.Net.Clock.Now()
	return r
}
