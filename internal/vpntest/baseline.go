package vpntest

import (
	"fmt"
	"net/netip"
	"net/url"

	"vpnscope/internal/websim"
)

// Baseline is the known-unmodified ground truth the paper collected
// "from a university IP several times per day": reference DOMs,
// resource host sets, certificate fingerprints, and DNS answers. Every
// manipulation test diffs against it.
type Baseline struct {
	// DOM maps a DOM-test URL to its reference document body.
	DOM map[string]string
	// ResourceHosts maps a DOM-test URL to the hostnames its page
	// legitimately references (the injection whitelist).
	ResourceHosts map[string]map[string]bool
	// CertFingerprints maps a TLS hostname to its reference
	// certificate fingerprint.
	CertFingerprints map[string]uint64
	// DNSAnswers maps hostnames to the answer from a trusted resolver.
	DNSAnswers map[string]netip.Addr
	// FinalStatus maps each TLS-test hostname to the status of a
	// clean HTTP-then-redirect page load.
	FinalStatus map[string]int
}

// CollectBaseline gathers ground truth from a clean (non-VPN) vantage
// point. The client must be resolving through a trusted resolver.
func CollectBaseline(cfg *Config, client *websim.Client) (*Baseline, error) {
	b := &Baseline{
		DOM:              make(map[string]string),
		ResourceHosts:    make(map[string]map[string]bool),
		CertFingerprints: make(map[string]uint64),
		DNSAnswers:       make(map[string]netip.Addr),
		FinalStatus:      make(map[string]int),
	}
	for _, u := range cfg.DOMSiteURLs {
		_, hosts, dom, err := client.LoadPage(u)
		if err != nil {
			return nil, fmt.Errorf("vpntest: baseline DOM for %s: %w", u, err)
		}
		b.DOM[u] = dom
		set := make(map[string]bool, len(hosts))
		for _, h := range hosts {
			set[h] = true
		}
		b.ResourceHosts[u] = set
	}
	for _, host := range cfg.TLSHosts {
		chain, err := client.Get("https://" + host + "/")
		if err != nil {
			return nil, fmt.Errorf("vpntest: baseline cert for %s: %w", host, err)
		}
		final := chain[len(chain)-1]
		if !final.TLS {
			return nil, fmt.Errorf("vpntest: baseline for %s not TLS", host)
		}
		b.CertFingerprints[host] = final.Cert.Fingerprint()

		httpChain, err := client.Get("http://" + host + "/")
		if err != nil {
			return nil, fmt.Errorf("vpntest: baseline http for %s: %w", host, err)
		}
		b.FinalStatus[host] = httpChain[len(httpChain)-1].Response.Status
	}
	for _, host := range cfg.DNSCheckHosts {
		addr, err := client.Resolve(host, false)
		if err != nil {
			return nil, fmt.Errorf("vpntest: baseline DNS for %s: %w", host, err)
		}
		b.DNSAnswers[host] = addr
	}
	return b, nil
}

// hostOf extracts the hostname of a URL (empty on parse failure).
func hostOf(raw string) string {
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}
