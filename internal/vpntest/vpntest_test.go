package vpntest_test

import (
	"strings"
	"testing"

	"vpnscope/internal/ecosystem"
	"vpnscope/internal/study"
	"vpnscope/internal/vpn"
	"vpnscope/internal/vpntest"
)

// harness builds a small world and connects a client to the named
// provider's first vantage point, returning a ready Env.
type harness struct {
	world  *study.World
	client *vpn.Client
	env    *vpntest.Env
}

func newHarness(t testing.TB, provider string) *harness {
	t.Helper()
	all := ecosystem.TestedSpecs(3, 5)
	var specs []vpn.ProviderSpec
	for _, s := range all {
		if s.Name == provider {
			// Pin reliability so unit tests never hit flaky paths.
			for i := range s.VantagePoints {
				s.VantagePoints[i].Reliability = 1
			}
			specs = append(specs, s)
		}
	}
	if len(specs) != 1 {
		t.Fatalf("provider %q not found", provider)
	}
	w, err := study.Build(study.Options{Seed: 3, ExtraTLSHosts: 10, Providers: specs, LandmarkCount: 15})
	if err != nil {
		t.Fatal(err)
	}
	stack, err := w.NewClientStack()
	if err != nil {
		t.Fatal(err)
	}
	p := w.Providers[0]
	client, err := vpn.Connect(stack, p.VPs[0])
	if err != nil {
		t.Fatal(err)
	}
	env := vpntest.NewEnv(w.Config, w.Baseline, stack, p.Name(), p.VPs[0].ID(), p.VPs[0].ClaimedCountry)
	return &harness{world: w, client: client, env: env}
}

func TestEgressIPDiscovery(t *testing.T) {
	h := newHarness(t, "Mullvad")
	defer h.client.Disconnect()
	egress, err := h.env.EgressIP()
	if err != nil {
		t.Fatal(err)
	}
	if egress != h.world.Providers[0].VPs[0].Addr() {
		t.Errorf("egress = %v, want the VP address", egress)
	}
	// Cached: second call returns the same value.
	again, err := h.env.EgressIP()
	if err != nil || again != egress {
		t.Errorf("cache broken: %v, %v", again, err)
	}
}

func TestDNSManipulationCleanProvider(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	res, err := vpntest.RunDNSManipulation(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queried != len(h.world.Config.DNSCheckHosts) {
		t.Errorf("queried = %d", res.Queried)
	}
	if res.Manipulated() {
		t.Errorf("false positive: %+v", res.Diffs)
	}
}

func TestDOMCollectionDetectsInjection(t *testing.T) {
	h := newHarness(t, "Seed4.me")
	defer h.client.Disconnect()
	res, err := vpntest.RunDOMCollection(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesLoaded == 0 {
		t.Fatal("no pages loaded")
	}
	if len(res.Injections) == 0 {
		t.Fatal("injection missed")
	}
	inj := res.Injections[0]
	if !strings.Contains(strings.Join(inj.InjectedHosts, ","), "cdn.seed4-me.example") {
		t.Errorf("injected hosts = %v", inj.InjectedHosts)
	}
	if !strings.Contains(inj.Snippet, "overlay") {
		t.Errorf("snippet = %q", inj.Snippet)
	}
}

func TestTLSCleanProvider(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	res, err := vpntest.RunTLS(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if res.HostsProbed != len(h.world.Config.TLSHosts) {
		t.Errorf("probed = %d", res.HostsProbed)
	}
	if len(res.Intercepted) != 0 || len(res.Downgraded) != 0 {
		t.Errorf("false positives: %+v / %v", res.Intercepted, res.Downgraded)
	}
}

func TestProxyDetection(t *testing.T) {
	h := newHarness(t, "CyberGhost") // transparent proxy
	defer h.client.Disconnect()
	res, err := vpntest.RunProxyDetection(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Modified || !res.Regenerated {
		t.Fatalf("res = %+v", res)
	}
	if len(res.HeadersAdded) != 0 {
		t.Errorf("regenerating proxy should not add headers: %v", res.HeadersAdded)
	}
	if len(res.HeadersChanged) == 0 {
		t.Error("regeneration should change header spellings")
	}
}

func TestRecursiveOrigin(t *testing.T) {
	h := newHarness(t, "Mullvad")
	defer h.client.Disconnect()
	res, err := vpntest.RunRecursiveOrigin(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.TaggedName, h.world.Config.ProbeDomain) {
		t.Errorf("tagged name = %q", res.TaggedName)
	}
	if len(res.Origins) != 1 {
		t.Fatalf("origins = %v", res.Origins)
	}
	// Mullvad is third-party OpenVPN: it does not set the system DNS,
	// so recursion comes from the client's ISP resolver, not the VP.
	if res.Origins[0] != h.env.Stack.Resolvers()[0] {
		t.Errorf("origin = %v, want ISP resolver %v", res.Origins[0], h.env.Stack.Resolvers()[0])
	}
}

func TestPingSweepAndVector(t *testing.T) {
	h := newHarness(t, "Mullvad")
	defer h.client.Disconnect()
	res, err := vpntest.RunPingSweep(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != len(h.world.Config.Landmarks) {
		t.Errorf("samples = %d, failed = %d", len(res.Samples), res.Failed)
	}
	if res.SelfRTT <= 0 {
		t.Errorf("self RTT = %v", res.SelfRTT)
	}
	vec := res.Vector(h.world.Config)
	if len(vec) != len(h.world.Config.Landmarks) {
		t.Fatalf("vector length = %d", len(vec))
	}
	for i, v := range vec {
		if v < 0 {
			t.Errorf("vector[%d] missing", i)
		}
	}
	if s, ok := res.MinSample(); !ok || s.RTTms <= 0 {
		t.Errorf("min sample = %+v, %v", s, ok)
	}
}

func TestGeolocation(t *testing.T) {
	h := newHarness(t, "Mullvad")
	defer h.client.Disconnect()
	res, err := vpntest.RunGeolocation(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EgressIP.IsValid() || !res.WhoisFound {
		t.Fatalf("res = %+v", res)
	}
	if !res.WhoisBlock.Prefix.Contains(res.EgressIP) {
		t.Error("whois block does not contain egress IP")
	}
}

func TestLeakTestsCleanCustomClient(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	res, err := vpntest.RunLeakTests(h.env)
	if err != nil {
		t.Fatal(err)
	}
	if res.DNSLeak || res.IPv6Leak {
		t.Errorf("false positives: %+v", res)
	}
	if res.IPv6Probes != len(h.world.Config.IPv6ProbeHosts) {
		t.Errorf("probes = %d", res.IPv6Probes)
	}
}

func TestSuiteOptionsSkips(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	r := vpntest.RunSuite(h.env, vpntest.SuiteOptions{SkipDOM: true, SkipTLS: true, SkipLeaks: true, SkipFailure: true})
	if r.DOM != nil || r.TLS != nil || r.Leaks != nil || r.Failure != nil {
		t.Error("skipped tests still ran")
	}
	if r.Pings == nil || r.Geo == nil || r.Proxy == nil {
		t.Error("non-skipped tests missing")
	}
	if r.FinishedAt <= r.StartedAt {
		t.Error("suite must consume virtual time")
	}
	if len(r.Routes) == 0 || len(r.Resolvers) == 0 {
		t.Error("metadata snapshot missing")
	}
}

func TestPingOnlySuite(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	r := vpntest.RunSuite(h.env, vpntest.SuiteOptions{PingOnly: true})
	if r.Pings == nil || r.Geo == nil {
		t.Fatal("ping-only essentials missing")
	}
	if r.DOM != nil || r.TLS != nil || r.Proxy != nil || r.Leaks != nil || r.Failure != nil {
		t.Error("ping-only ran heavy tests")
	}
}

func TestBaselineCompleteness(t *testing.T) {
	h := newHarness(t, "Windscribe")
	defer h.client.Disconnect()
	b := h.world.Baseline
	cfg := h.world.Config
	if len(b.DOM) != len(cfg.DOMSiteURLs) {
		t.Errorf("baseline DOM entries = %d", len(b.DOM))
	}
	if len(b.CertFingerprints) != len(cfg.TLSHosts) {
		t.Errorf("baseline certs = %d", len(b.CertFingerprints))
	}
	if len(b.DNSAnswers) != len(cfg.DNSCheckHosts) {
		t.Errorf("baseline DNS = %d", len(b.DNSAnswers))
	}
	for u, status := range b.FinalStatus {
		if status != 200 {
			t.Errorf("baseline status for %s = %d", u, status)
		}
	}
}

func BenchmarkFullSuiteOneVP(b *testing.B) {
	h := newHarness(b, "Windscribe")
	defer h.client.Disconnect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Skip the failure test: it firewalls the stack and would
		// leave the client failed for later iterations.
		_ = vpntest.RunSuite(h.env, vpntest.SuiteOptions{SkipFailure: true})
	}
}
