// Package vpntest is the paper's primary contribution rebuilt in Go: an
// active-measurement test suite that audits a VPN connection for traffic
// interception and manipulation (§5.3.1), infrastructure properties
// (§5.3.2), and traffic leakage (§5.3.3), from the standpoint of an end
// user.
//
// The suite is strictly black-box: it receives an already-connected
// network stack and a description of the reference infrastructure
// (target sites, landmarks, resolvers, trust roots, a pre-collected
// ground-truth baseline). It never touches the ground-truth behavior
// fields in internal/vpn — the same separation the paper had between
// its measurement VM and the providers it measured.
package vpntest

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
	"vpnscope/internal/tlssim"
	"vpnscope/internal/websim"
)

// Landmark is a host with a trusted, known physical location: a RIPE
// Atlas anchor, a DNS root instance, or an anycast resolver site. The
// suite pings landmarks to fingerprint where a vantage point really is.
type Landmark struct {
	Name string
	City geo.City
	Addr netip.Addr
}

// Config is the static description of the measurement infrastructure,
// shared across every vantage point tested in a study.
type Config struct {
	// DOMSiteURLs are the ~55 plain-HTTP pages for DOM/request
	// collection; two of them are honeysites.
	DOMSiteURLs []string
	// TLSHosts are the hostnames probed by the TLS interception and
	// downgrade test (the DOM sites plus ~150 more).
	TLSHosts []string
	// DNSCheckHosts are the popular hostnames the DNS-manipulation
	// test resolves via both paths.
	DNSCheckHosts []string
	// IPv6ProbeHosts maps hostname to its IPv6 address for the
	// IPv6-leakage probe (addresses are pre-resolved from the
	// baseline vantage so the probe itself needs no AAAA lookup).
	IPv6ProbeHosts map[string]netip.Addr
	// EchoURL, IPEchoURL and WebRTCProbeURL are the header-echo,
	// what-is-my-IP, and WebRTC-leak endpoints.
	EchoURL        string
	IPEchoURL      string
	WebRTCProbeURL string
	// PublicResolvers are anycast open resolvers (Google, Quad9).
	PublicResolvers []netip.Addr
	// Landmarks are ping targets with known locations.
	Landmarks []Landmark
	// ProbeDomain is the origin-logging authority's suffix; the suite
	// resolves unique tagged names under it.
	ProbeDomain string
	// OriginsOf reads the authority's log for a tagged name (wired to
	// dnssim.Authority.OriginsOf by the study assembly).
	OriginsOf func(name string) []netip.Addr
	// TrustPool verifies served TLS certificates.
	TrustPool *tlssim.Pool
	// Whois resolves an address to its registered block (org, ASN,
	// country) — the suite's stand-in for WHOIS lookups.
	Whois func(addr netip.Addr) (netsim.Block, bool)
	// GeoAPI geolocates an address the way the Google Maps API
	// geolocated the requester's IP (§5.3.2).
	GeoAPI func(addr netip.Addr) (geo.Country, bool)
	// TunnelFailureProbe is the host kept reachable while everything
	// else is firewalled during the tunnel-failure test.
	TunnelFailureProbe netip.Addr
	TunnelFailureURL   string
	// FailureWindow is how long the failure test keeps probing; the
	// paper used three minutes and acknowledges the resulting
	// conservatism.
	FailureWindowSeconds int

	// Derived state below is built lazily, once per Config, and shared
	// by every slot of a study (the corpora are static, so the per-host
	// URL strings, probe wire bytes, and host sets never change).
	derivedOnce   sync.Once
	tlsURLs       []hostURLs
	sortedV6Hosts []string
	v6ProbeReqs   [][]byte

	legitOnce sync.Once
	legitBase *Baseline
	legitMap  map[string]bool
}

// hostURLs are the two probe URLs RunTLS fetches for one host.
type hostURLs struct {
	https, http string
}

// derived builds the Config's lazily shared probe furniture.
func (c *Config) derived() {
	c.derivedOnce.Do(func() {
		c.tlsURLs = make([]hostURLs, len(c.TLSHosts))
		for i, h := range c.TLSHosts {
			c.tlsURLs[i] = hostURLs{https: "https://" + h + "/", http: "http://" + h + "/"}
		}
		c.sortedV6Hosts = make([]string, 0, len(c.IPv6ProbeHosts))
		for host := range c.IPv6ProbeHosts {
			c.sortedV6Hosts = append(c.sortedV6Hosts, host)
		}
		sort.Strings(c.sortedV6Hosts)
		c.v6ProbeReqs = make([][]byte, len(c.sortedV6Hosts))
		for i, host := range c.sortedV6Hosts {
			c.v6ProbeReqs[i] = websim.NewRequest("GET", host, "/").Encode()
		}
	})
}

// legitNames returns the exact-match host set legitimateQueryNames
// uses, cached for the (Config, Baseline) pair every slot of a study
// shares; an unexpected second baseline gets a fresh uncached build.
func (c *Config) legitNames(b *Baseline) map[string]bool {
	c.legitOnce.Do(func() {
		c.legitBase = b
		c.legitMap = buildLegitNames(c, b)
	})
	if c.legitBase == b {
		return c.legitMap
	}
	return buildLegitNames(c, b)
}

func buildLegitNames(c *Config, b *Baseline) map[string]bool {
	exact := map[string]bool{}
	addURL := func(raw string) {
		if h := hostOf(raw); h != "" {
			exact[strings.ToLower(h)] = true
		}
	}
	for _, u := range c.DOMSiteURLs {
		addURL(u)
	}
	for _, h := range c.TLSHosts {
		exact[strings.ToLower(h)] = true
	}
	for _, h := range c.DNSCheckHosts {
		exact[strings.ToLower(h)] = true
	}
	for h := range c.IPv6ProbeHosts {
		exact[strings.ToLower(h)] = true
	}
	addURL(c.EchoURL)
	addURL(c.IPEchoURL)
	addURL(c.WebRTCProbeURL)
	addURL(c.TunnelFailureURL)
	// Subresource hosts referenced by baseline DOMs (ad networks etc.).
	if b != nil {
		for _, hosts := range b.ResourceHosts {
			for h := range hosts {
				exact[strings.ToLower(h)] = true
			}
		}
	}
	return exact
}

// Env is one vantage point's test context: the connected stack plus the
// shared config and baseline.
type Env struct {
	Cfg      *Config
	Baseline *Baseline
	Stack    *netsim.Stack
	Client   *websim.Client
	// Meta describes what the provider claims about this vantage
	// point (user-visible information only).
	Provider       string
	VPLabel        string
	ClaimedCountry geo.Country

	cachedEgress netip.Addr
}

// NewEnv builds an Env over a connected stack.
func NewEnv(cfg *Config, baseline *Baseline, stack *netsim.Stack, provider, vpLabel string, claimed geo.Country) *Env {
	return &Env{
		Cfg:            cfg,
		Baseline:       baseline,
		Stack:          stack,
		Client:         &websim.Client{Stack: stack},
		Provider:       provider,
		VPLabel:        vpLabel,
		ClaimedCountry: claimed,
	}
}

// EgressIP discovers the connection's public egress address via the
// what-is-my-IP service. Flaky paths get a few retries — partial
// re-collection was routine in the paper's campaign (§5.2).
func (e *Env) EgressIP() (netip.Addr, error) {
	if e.cachedEgress.IsValid() {
		return e.cachedEgress, nil
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		chain, err := e.Client.Get(e.Cfg.IPEchoURL)
		if err != nil {
			lastErr = err
			continue
		}
		final := chain[len(chain)-1].Response
		addr, err := netip.ParseAddr(string(final.Body))
		if err != nil {
			lastErr = fmt.Errorf("parsing egress IP %q: %w", final.Body, err)
			continue
		}
		e.cachedEgress = addr
		return addr, nil
	}
	return netip.Addr{}, fmt.Errorf("vpntest: discovering egress IP: %w", lastErr)
}
