package tlssim

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestIssueAndVerify(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	pool := NewPool(ca)
	cert := ca.Issue("www.example.com")
	if err := pool.Verify(cert, "www.example.com"); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsUntrustedIssuer(t *testing.T) {
	trusted := NewCA("SimTrust Root", 1)
	mitm := NewCA("EvilProxy CA", 2)
	pool := NewPool(trusted)
	cert := mitm.Issue("www.example.com")
	if err := pool.Verify(cert, "www.example.com"); err == nil {
		t.Fatal("MITM cert must not verify")
	}
}

func TestVerifyRejectsTamperedCert(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	pool := NewPool(ca)
	cert := ca.Issue("www.example.com")
	cert.Subject = "www.evil.com" // resign not possible without secret
	if err := pool.Verify(cert, "www.evil.com"); err == nil {
		t.Fatal("tampered cert must not verify")
	}
}

func TestVerifyRejectsHostMismatch(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	pool := NewPool(ca)
	cert := ca.Issue("www.example.com")
	if err := pool.Verify(cert, "other.example.com"); err == nil {
		t.Fatal("host mismatch must fail")
	}
}

func TestImpersonationAcrossCASeeds(t *testing.T) {
	// A CA with the same name but a different seed cannot satisfy the
	// pool holding the original.
	real := NewCA("SimTrust Root", 1)
	fake := NewCA("SimTrust Root", 999)
	pool := NewPool(real)
	cert := fake.Issue("www.example.com")
	if err := pool.Verify(cert, "www.example.com"); err == nil {
		t.Fatal("name-colliding CA must not verify")
	}
}

func TestWildcardMatching(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	cert := ca.Issue("*.example.com")
	cases := []struct {
		host string
		want bool
	}{
		{"www.example.com", true},
		{"api.example.com", true},
		{"example.com", false},
		{"a.b.example.com", false},
		{"www.other.com", false},
	}
	for _, c := range cases {
		if got := cert.MatchesHost(c.host); got != c.want {
			t.Errorf("MatchesHost(%q) = %v, want %v", c.host, got, c.want)
		}
	}
}

func TestFingerprintDistinguishesCerts(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	a := ca.Issue("www.example.com")
	b := ca.Issue("www.example.com") // new serial
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct serials must have distinct fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint must be stable")
	}
}

func TestClientHelloRoundTrip(t *testing.T) {
	inner := []byte("GET / HTTP/1.1\r\nHost: www.example.com\r\n\r\n")
	hello := EncodeClientHello("www.example.com", inner)
	if !IsClientHello(hello) {
		t.Fatal("framing not recognized")
	}
	host, got, err := ParseClientHello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if host != "www.example.com" || !bytes.Equal(got, inner) {
		t.Fatalf("host=%q inner=%q", host, got)
	}
	if _, _, err := ParseClientHello([]byte("nonsense")); err == nil {
		t.Fatal("garbage must not parse")
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	ca := NewCA("SimTrust Root", 1)
	cert := ca.Issue("www.example.com")
	inner := []byte("HTTP/1.1 200 OK\r\n\r\nhello")
	resp, err := EncodeServerHello(cert, inner)
	if err != nil {
		t.Fatal(err)
	}
	back, got, err := ParseServerHello(resp)
	if err != nil {
		t.Fatal(err)
	}
	if back != cert || !bytes.Equal(got, inner) {
		t.Fatalf("cert=%+v inner=%q", back, got)
	}
}

func TestDowngradeDetection(t *testing.T) {
	// A cleartext HTTP response where a ServerHello was expected parses
	// as ErrDowngraded — the TLS-stripping signal.
	_, _, err := ParseServerHello([]byte("HTTP/1.1 200 OK\r\n\r\nplain"))
	if err != ErrDowngraded {
		t.Fatalf("err = %v, want ErrDowngraded", err)
	}
}

func TestHelloPayloadProperty(t *testing.T) {
	if err := quick.Check(func(inner []byte) bool {
		hello := EncodeClientHello("h.test", inner)
		_, got, err := ParseClientHello(hello)
		return err == nil && bytes.Equal(got, inner)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIssueVerify(b *testing.B) {
	ca := NewCA("SimTrust Root", 1)
	pool := NewPool(ca)
	for i := 0; i < b.N; i++ {
		cert := ca.Issue("www.example.com")
		if err := pool.Verify(cert, "www.example.com"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParsersArbitraryBytesNeverPanic(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		_, _, _ = ParseClientHello(data)
		_, _, _ = ParseServerHello(data)
		_ = IsClientHello(data)
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
