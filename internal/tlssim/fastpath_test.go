package tlssim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

var fastpathCerts = []Certificate{
	{},
	{Subject: "example.com", Issuer: "SimTrust Root", Serial: 1, Sig: 42},
	{Subject: "*.wildcard.example", Issuer: "mitm-ca", Serial: 1<<32 | 7, Sig: 1<<64 - 1},
	{Subject: "a", Issuer: "b", Serial: 0, Sig: 0},
	{Subject: "host.with-dash_and~tilde.example", Issuer: "ca!#$%()*+,-./:;=?@[]^_`{|}", Serial: 123456789, Sig: 987654321},
}

// Certificates whose names force the json.Marshal fallback.
var fallbackCerts = []Certificate{
	{Subject: "quote\"inside", Issuer: "ca", Serial: 1, Sig: 2},
	{Subject: "back\\slash", Issuer: "ca", Serial: 1, Sig: 2},
	{Subject: "angle<bracket>", Issuer: "amp&ersand", Serial: 1, Sig: 2},
	{Subject: "ünïcode.example", Issuer: "ca", Serial: 1, Sig: 2},
	{Subject: "ctrl\x01char", Issuer: "ca", Serial: 1, Sig: 2},
}

func TestAppendCertJSONMatchesMarshal(t *testing.T) {
	for _, c := range fastpathCerts {
		fast, ok := appendCertJSON(nil, c)
		if !ok {
			t.Fatalf("appendCertJSON rejected plain cert %+v", c)
		}
		ref, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fast, ref) {
			t.Errorf("cert %+v: fast %q != json.Marshal %q", c, fast, ref)
		}
	}
	for _, c := range fallbackCerts {
		if _, ok := appendCertJSON(nil, c); ok {
			t.Errorf("appendCertJSON accepted cert needing escapes: %+v", c)
		}
	}
}

func TestParseCertJSONMatchesUnmarshal(t *testing.T) {
	all := append(append([]Certificate{}, fastpathCerts...), fallbackCerts...)
	for _, c := range all {
		wire, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var ref Certificate
		if err := json.Unmarshal(wire, &ref); err != nil {
			t.Fatal(err)
		}
		if fast, ok := parseCertJSON(wire); ok {
			if fast != ref {
				t.Errorf("wire %q: fast parse %+v != json.Unmarshal %+v", wire, fast, ref)
			}
		} else {
			// Fallback path must still land on the same certificate.
			var via Certificate
			if err := json.Unmarshal(wire, &via); err != nil || via != ref {
				t.Errorf("wire %q: fallback parse diverged: %+v vs %+v (%v)", wire, via, ref, err)
			}
		}
	}
	// Shapes the fast parser must reject (fallback decides their fate).
	for _, bad := range []string{
		`{ "subject":"a","issuer":"b","serial":1,"sig":2}`, // whitespace
		`{"issuer":"b","subject":"a","serial":1,"sig":2}`,  // reordered
		`{"subject":"a","issuer":"b","serial":-1,"sig":2}`, // negative
		`{"subject":"a","issuer":"b","serial":99999999999999999999,"sig":2}`, // overflow
		`{"subject":"a","issuer":"b","serial":1,"sig":2,}`,
		`{"subject":"a\"x","issuer":"b","serial":1,"sig":2}`,
	} {
		if _, ok := parseCertJSON([]byte(bad)); ok {
			t.Errorf("fast parser accepted %q", bad)
		}
	}
}

func TestServerHelloFastPathRoundTrip(t *testing.T) {
	inner := []byte("HTTP/1.1 200 OK\r\n\r\nhello")
	for _, c := range append(append([]Certificate{}, fastpathCerts...), fallbackCerts...) {
		frame, err := EncodeServerHello(c, inner)
		if err != nil {
			t.Fatal(err)
		}
		got, gotInner, err := ParseServerHello(frame)
		if err != nil {
			t.Fatalf("cert %+v: %v", c, err)
		}
		// json round-trips coerce invalid UTF-8; compare against what a
		// pure-json round trip of the same cert yields.
		wire, _ := json.Marshal(c)
		var want Certificate
		if err := json.Unmarshal(wire, &want); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("cert %+v: round trip %+v, want %+v", c, got, want)
		}
		if !bytes.Equal(gotInner, inner) {
			t.Errorf("cert %+v: inner %q", c, gotInner)
		}
	}
}

func TestFingerprintAndSignMatchFormatted(t *testing.T) {
	ca := NewCA("SimTrust Root", 7)
	for _, c := range append(append([]Certificate{}, fastpathCerts...), fallbackCerts...) {
		wantFP := fnv(fmt.Sprintf("%s|%s|%d|%d", c.Subject, c.Issuer, c.Serial, c.Sig))
		if got := c.Fingerprint(); got != wantFP {
			t.Errorf("cert %+v: Fingerprint %x, want %x", c, got, wantFP)
		}
		wantSig := fnv(fmt.Sprintf("%d|%s|%s|%d", ca.secret, c.Subject, c.Issuer, c.Serial))
		if got := ca.sign(c); got != wantSig {
			t.Errorf("cert %+v: sign %x, want %x", c, got, wantSig)
		}
	}
}

func TestFingerprintAllocFree(t *testing.T) {
	c := Certificate{Subject: "long-subject-name.some-provider.example", Issuer: "SimTrust Root Authority", Serial: 1 << 40, Sig: 1 << 50}
	if n := testing.AllocsPerRun(100, func() { _ = c.Fingerprint() }); n > 0 {
		t.Errorf("Fingerprint allocates %v per call", n)
	}
}
