// Package tlssim models just enough of TLS for the paper's interception
// and downgrade tests (§5.3.1): certificates issued by CAs, a trust
// pool, and a simple handshake framing carried over the simulator's TCP
// exchanges. There is no real cryptography — the security property the
// tests need is only that a man-in-the-middle cannot present a
// certificate chaining to a trusted root, which the model guarantees by
// construction (signatures bind to a CA secret the MITM does not have).
package tlssim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

)

// Certificate is a simulated X.509 leaf or root certificate.
type Certificate struct {
	Subject string `json:"subject"` // hostname (leaf) or CA name (root)
	Issuer  string `json:"issuer"`
	Serial  uint64 `json:"serial"`
	// Sig binds (Subject, Issuer, Serial) to the issuing CA's secret.
	Sig uint64 `json:"sig"`
}

// Fingerprint returns a stable identifier for the certificate, used by
// the measurement suite to compare ground-truth and observed certs. The
// hash input is assembled in a stack buffer ("subject|issuer|serial|sig",
// numbers in decimal — the bytes the original Sprintf produced), so the
// per-certificate call is allocation-free.
func (c Certificate) Fingerprint() uint64 {
	var arr [128]byte
	b := append(arr[:0], c.Subject...)
	b = append(b, '|')
	b = append(b, c.Issuer...)
	b = append(b, '|')
	b = strconv.AppendUint(b, c.Serial, 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, c.Sig, 10)
	return fnvBytes(b)
}

// MatchesHost reports whether the certificate is valid for host,
// honoring a single leading wildcard label.
func (c Certificate) MatchesHost(host string) bool {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	subj := strings.ToLower(c.Subject)
	if subj == host {
		return true
	}
	if rest, ok := strings.CutPrefix(subj, "*."); ok {
		if i := strings.IndexByte(host, '.'); i > 0 && host[i+1:] == rest {
			return true
		}
	}
	return false
}

// CA is a simulated certificate authority.
type CA struct {
	Name   string
	secret uint64
	serial uint64
}

// NewCA creates a CA whose signing secret derives from seed.
func NewCA(name string, seed uint64) *CA {
	return &CA{Name: name, secret: fnv(fmt.Sprintf("ca|%s|%d", name, seed))}
}

// Issue signs a leaf certificate for subject.
func (ca *CA) Issue(subject string) Certificate {
	ca.serial++
	c := Certificate{Subject: subject, Issuer: ca.Name, Serial: ca.serial}
	c.Sig = ca.sign(c)
	return c
}

// ResetSerial pins the CA's serial counter to base, making subsequently
// issued serials (base+1, base+2, …) a pure function of base and the
// issue order since the reset. An on-the-fly MITM CA otherwise numbers
// its leaves by global issue order, which would make certificate
// fingerprints depend on how many interceptions happened earlier in a
// campaign; the runner resets the counter to a slot-derived base at
// every vantage-point boundary so fingerprints stay history-free.
func (ca *CA) ResetSerial(base uint64) {
	ca.serial = base
}

// sign computes the signature over the certificate's identity fields
// ("secret|subject|issuer|serial", the same bytes the original Sprintf
// hashed) without allocating the intermediate string.
func (ca *CA) sign(c Certificate) uint64 {
	var arr [128]byte
	b := strconv.AppendUint(arr[:0], ca.secret, 10)
	b = append(b, '|')
	b = append(b, c.Subject...)
	b = append(b, '|')
	b = append(b, c.Issuer...)
	b = append(b, '|')
	b = strconv.AppendUint(b, c.Serial, 10)
	return fnvBytes(b)
}

// Pool is a set of trusted CAs, playing the role of the client's root
// store. Verification succeeds only for certificates signed by a pooled
// CA — the pool holds the CA objects themselves, standing in for the
// asymmetric-verification property of real PKI.
type Pool struct {
	cas map[string]*CA
}

// NewPool builds a trust pool over the given CAs.
func NewPool(cas ...*CA) *Pool {
	p := &Pool{cas: make(map[string]*CA, len(cas))}
	for _, ca := range cas {
		p.cas[ca.Name] = ca
	}
	return p
}

// Verification errors.
var (
	ErrUntrustedIssuer = errors.New("tlssim: certificate issuer not trusted")
	ErrBadSignature    = errors.New("tlssim: certificate signature invalid")
	ErrHostMismatch    = errors.New("tlssim: certificate does not match host")
)

// Verify checks that cert chains to a trusted CA and matches host.
func (p *Pool) Verify(cert Certificate, host string) error {
	ca, ok := p.cas[cert.Issuer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUntrustedIssuer, cert.Issuer)
	}
	if ca.sign(cert) != cert.Sig {
		return fmt.Errorf("%w: subject %q", ErrBadSignature, cert.Subject)
	}
	if !cert.MatchesHost(host) {
		return fmt.Errorf("%w: %q for host %q", ErrHostMismatch, cert.Subject, host)
	}
	return nil
}

// ---------------------------------------------------------------------
// Handshake framing
// ---------------------------------------------------------------------

// Wire framing constants. A ClientHello is a text preamble followed by
// the application request; a ServerHello is a JSON certificate followed
// by the application response. A server that answers a ClientHello with
// anything not starting with helloRespMagic has "stripped" TLS — the
// downgrade signature the test suite looks for.
const (
	helloMagic     = "TLSSIM-HELLO "
	helloRespMagic = "TLSSIM-CERT "
)

// EncodeClientHello frames an application request for host over TLS.
// The frame is staged in a pooled serialize buffer and copied out at
// exact size, so the hot handshake path costs one allocation.
func EncodeClientHello(host string, inner []byte) []byte {
	return AppendClientHello(make([]byte, 0, len(helloMagic)+len(host)+1+len(inner)), host, inner)
}

// AppendClientHello appends the framed hello onto dst and returns the
// extended slice; hot callers reuse dst as scratch.
func AppendClientHello(dst []byte, host string, inner []byte) []byte {
	dst = append(dst, helloMagic...)
	dst = append(dst, host...)
	dst = append(dst, '\n')
	return append(dst, inner...)
}

// Client-hello parse failures (package-level so the hot reject paths
// allocate nothing).
var (
	errNotClientHello       = errors.New("tlssim: not a client hello")
	errTruncatedClientHello = errors.New("tlssim: truncated client hello")
	errTruncatedServerHello = errors.New("tlssim: truncated server hello")
)

// ParseClientHello splits a framed hello into SNI and inner request.
func ParseClientHello(data []byte) (host string, inner []byte, err error) {
	sni, inner, err := clientHelloParts(data)
	if err != nil {
		return "", nil, err
	}
	return string(sni), inner, nil
}

// ClientHelloInner returns just the inner request of a framed hello —
// the variant for servers that do not care about the SNI, which skips
// materializing the name string.
func ClientHelloInner(data []byte) ([]byte, error) {
	_, inner, err := clientHelloParts(data)
	return inner, err
}

func clientHelloParts(data []byte) (sni, inner []byte, err error) {
	rest, ok := bytes.CutPrefix(data, []byte(helloMagic))
	if !ok {
		return nil, nil, errNotClientHello
	}
	sni, inner, ok = bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return nil, nil, errTruncatedClientHello
	}
	return sni, inner, nil
}

// IsClientHello reports whether data is framed as a ClientHello.
func IsClientHello(data []byte) bool {
	return bytes.HasPrefix(data, []byte(helloMagic))
}

// EncodeServerHello frames a response: certificate then payload. An
// encoding failure is returned, not panicked: handshake synthesis runs
// inside packet handlers, where a panic would take down a whole
// campaign instead of one exchange.
func EncodeServerHello(cert Certificate, inner []byte) ([]byte, error) {
	var arr [160]byte
	cj, ok := appendCertJSON(arr[:0], cert)
	if !ok {
		// Names outside the plain-ASCII fast path (escapes, non-ASCII)
		// take the reflective encoder; output is identical either way.
		var err error
		if cj, err = json.Marshal(cert); err != nil {
			return nil, fmt.Errorf("tlssim: encoding certificate: %w", err)
		}
	}
	out := make([]byte, 0, len(helloRespMagic)+len(cj)+1+len(inner))
	out = append(out, helloRespMagic...)
	out = append(out, cj...)
	out = append(out, '\n')
	return append(out, inner...), nil
}

// AppendServerHello appends the framed response onto dst and returns
// the extended slice; hot handlers reuse dst as scratch.
func AppendServerHello(dst []byte, cert Certificate, inner []byte) ([]byte, error) {
	var arr [160]byte
	cj, ok := appendCertJSON(arr[:0], cert)
	if !ok {
		var err error
		if cj, err = json.Marshal(cert); err != nil {
			return nil, fmt.Errorf("tlssim: encoding certificate: %w", err)
		}
	}
	dst = append(dst, helloRespMagic...)
	dst = append(dst, cj...)
	dst = append(dst, '\n')
	return append(dst, inner...), nil
}

// ParseServerHello splits a framed server hello. A parse failure on
// bytes that do not carry the magic indicates a TLS downgrade (the
// server or a middlebox answered in cleartext).
func ParseServerHello(data []byte) (Certificate, []byte, error) {
	rest, ok := bytes.CutPrefix(data, []byte(helloRespMagic))
	if !ok {
		return Certificate{}, nil, ErrDowngraded
	}
	line, inner, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return Certificate{}, nil, errTruncatedServerHello
	}
	cert, ok := parseCertJSON(line)
	if !ok {
		if err := json.Unmarshal(line, &cert); err != nil {
			return Certificate{}, nil, fmt.Errorf("tlssim: bad certificate frame: %w", err)
		}
	}
	return cert, inner, nil
}

// appendCertJSON appends cert encoded exactly as encoding/json would
// ({"subject":...,"issuer":...,"serial":N,"sig":N}), provided both names
// stay on the plain-ASCII fast path. ok=false means the caller must use
// json.Marshal (which escapes) to get the identical canonical bytes.
func appendCertJSON(dst []byte, c Certificate) ([]byte, bool) {
	if !jsonPlain(c.Subject) || !jsonPlain(c.Issuer) {
		return dst, false
	}
	dst = append(dst, `{"subject":"`...)
	dst = append(dst, c.Subject...)
	dst = append(dst, `","issuer":"`...)
	dst = append(dst, c.Issuer...)
	dst = append(dst, `","serial":`...)
	dst = strconv.AppendUint(dst, c.Serial, 10)
	dst = append(dst, `,"sig":`...)
	dst = strconv.AppendUint(dst, c.Sig, 10)
	dst = append(dst, '}')
	return dst, true
}

// jsonPlain reports whether encoding/json emits s verbatim: printable
// ASCII with none of the characters the encoder escapes ("\<>&).
func jsonPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b < 0x20 || b >= 0x80 || b == '"' || b == '\\' || b == '<' || b == '>' || b == '&' {
			return false
		}
	}
	return true
}

// parseCertJSON parses the exact shape appendCertJSON emits. Any
// deviation — escapes, whitespace, reordered fields, non-ASCII — returns
// false and the caller falls back to json.Unmarshal, which accepts every
// frame the json.Marshal path can produce.
func parseCertJSON(line []byte) (Certificate, bool) {
	rest, ok := bytes.CutPrefix(line, []byte(`{"subject":"`))
	if !ok {
		return Certificate{}, false
	}
	subj, rest, ok := cutPlainString(rest)
	if !ok {
		return Certificate{}, false
	}
	rest, ok = bytes.CutPrefix(rest, []byte(`,"issuer":"`))
	if !ok {
		return Certificate{}, false
	}
	iss, rest, ok := cutPlainString(rest)
	if !ok {
		return Certificate{}, false
	}
	rest, ok = bytes.CutPrefix(rest, []byte(`,"serial":`))
	if !ok {
		return Certificate{}, false
	}
	serial, rest, ok := cutUint(rest)
	if !ok {
		return Certificate{}, false
	}
	rest, ok = bytes.CutPrefix(rest, []byte(`,"sig":`))
	if !ok {
		return Certificate{}, false
	}
	sig, rest, ok := cutUint(rest)
	if !ok || len(rest) != 1 || rest[0] != '}' {
		return Certificate{}, false
	}
	return Certificate{
		Subject: string(subj),
		Issuer:  string(iss),
		Serial:  serial,
		Sig:     sig,
	}, true
}

// cutPlainString cuts a JSON string up to its closing quote, accepting
// only the plain-ASCII subset jsonPlain admits (so the fast parser never
// disagrees with json.Unmarshal about escapes or UTF-8 coercion).
func cutPlainString(b []byte) (s, rest []byte, ok bool) {
	i := bytes.IndexByte(b, '"')
	if i < 0 {
		return nil, nil, false
	}
	for _, c := range b[:i] {
		if c < 0x20 || c >= 0x80 || c == '\\' {
			return nil, nil, false
		}
	}
	return b[:i], b[i+1:], true
}

// cutUint cuts a decimal uint64, rejecting overflow (fallback handles
// the error the same way json would).
func cutUint(b []byte) (v uint64, rest []byte, ok bool) {
	const cutoff = (1<<64 - 1) / 10
	i := 0
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		d := uint64(b[i] - '0')
		if v > cutoff || (v == cutoff && d > 5) {
			return 0, nil, false
		}
		v = v*10 + d
		i++
	}
	if i == 0 {
		return 0, nil, false
	}
	return v, b[i:], true
}

// ErrDowngraded marks a response that should have been TLS but was not.
var ErrDowngraded = errors.New("tlssim: connection downgraded to cleartext")

func fnv(s string) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}

func fnvBytes(b []byte) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 0x100000001B3
	}
	return h
}

// CertCache interns decoded server-hello certificates by their raw
// frame line. A campaign parses the same few hundred certificate frames
// (one per site, plus one per MITM'd SNI) hundreds of thousands of
// times; after first sight a hit costs zero allocations and returns
// certificates whose name strings are shared.
//
// A CertCache is single-goroutine, like the world that owns it — hand
// one to each worker's client, never share across workers. The zero
// value is ready to use.
type CertCache struct {
	m map[string]Certificate
}

// maxCachedCerts bounds the table against SNI churn; overflow falls
// back to a plain parse.
const maxCachedCerts = 512

// ParseServerHello is ParseServerHello with certificate interning.
func (cc *CertCache) ParseServerHello(data []byte) (Certificate, []byte, error) {
	if cc == nil {
		return ParseServerHello(data)
	}
	rest, ok := bytes.CutPrefix(data, []byte(helloRespMagic))
	if !ok {
		return Certificate{}, nil, ErrDowngraded
	}
	line, inner, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return Certificate{}, nil, errTruncatedServerHello
	}
	if cert, ok := cc.m[string(line)]; ok { // no-alloc map probe
		return cert, inner, nil
	}
	cert, ok := parseCertJSON(line)
	if !ok {
		if err := json.Unmarshal(line, &cert); err != nil {
			return Certificate{}, nil, fmt.Errorf("tlssim: bad certificate frame: %w", err)
		}
	}
	if cc.m == nil {
		cc.m = make(map[string]Certificate, 64)
	}
	if len(cc.m) < maxCachedCerts {
		cc.m[string(line)] = cert
	}
	return cert, inner, nil
}
