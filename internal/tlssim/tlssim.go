// Package tlssim models just enough of TLS for the paper's interception
// and downgrade tests (§5.3.1): certificates issued by CAs, a trust
// pool, and a simple handshake framing carried over the simulator's TCP
// exchanges. There is no real cryptography — the security property the
// tests need is only that a man-in-the-middle cannot present a
// certificate chaining to a trusted root, which the model guarantees by
// construction (signatures bind to a CA secret the MITM does not have).
package tlssim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"vpnscope/internal/capture"
)

// Certificate is a simulated X.509 leaf or root certificate.
type Certificate struct {
	Subject string `json:"subject"` // hostname (leaf) or CA name (root)
	Issuer  string `json:"issuer"`
	Serial  uint64 `json:"serial"`
	// Sig binds (Subject, Issuer, Serial) to the issuing CA's secret.
	Sig uint64 `json:"sig"`
}

// Fingerprint returns a stable identifier for the certificate, used by
// the measurement suite to compare ground-truth and observed certs.
func (c Certificate) Fingerprint() uint64 {
	return fnv(fmt.Sprintf("%s|%s|%d|%d", c.Subject, c.Issuer, c.Serial, c.Sig))
}

// MatchesHost reports whether the certificate is valid for host,
// honoring a single leading wildcard label.
func (c Certificate) MatchesHost(host string) bool {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	subj := strings.ToLower(c.Subject)
	if subj == host {
		return true
	}
	if rest, ok := strings.CutPrefix(subj, "*."); ok {
		if i := strings.IndexByte(host, '.'); i > 0 && host[i+1:] == rest {
			return true
		}
	}
	return false
}

// CA is a simulated certificate authority.
type CA struct {
	Name   string
	secret uint64
	serial uint64
}

// NewCA creates a CA whose signing secret derives from seed.
func NewCA(name string, seed uint64) *CA {
	return &CA{Name: name, secret: fnv(fmt.Sprintf("ca|%s|%d", name, seed))}
}

// Issue signs a leaf certificate for subject.
func (ca *CA) Issue(subject string) Certificate {
	ca.serial++
	c := Certificate{Subject: subject, Issuer: ca.Name, Serial: ca.serial}
	c.Sig = ca.sign(c)
	return c
}

// ResetSerial pins the CA's serial counter to base, making subsequently
// issued serials (base+1, base+2, …) a pure function of base and the
// issue order since the reset. An on-the-fly MITM CA otherwise numbers
// its leaves by global issue order, which would make certificate
// fingerprints depend on how many interceptions happened earlier in a
// campaign; the runner resets the counter to a slot-derived base at
// every vantage-point boundary so fingerprints stay history-free.
func (ca *CA) ResetSerial(base uint64) {
	ca.serial = base
}

// sign computes the signature over the certificate's identity fields.
func (ca *CA) sign(c Certificate) uint64 {
	return fnv(fmt.Sprintf("%d|%s|%s|%d", ca.secret, c.Subject, c.Issuer, c.Serial))
}

// Pool is a set of trusted CAs, playing the role of the client's root
// store. Verification succeeds only for certificates signed by a pooled
// CA — the pool holds the CA objects themselves, standing in for the
// asymmetric-verification property of real PKI.
type Pool struct {
	cas map[string]*CA
}

// NewPool builds a trust pool over the given CAs.
func NewPool(cas ...*CA) *Pool {
	p := &Pool{cas: make(map[string]*CA, len(cas))}
	for _, ca := range cas {
		p.cas[ca.Name] = ca
	}
	return p
}

// Verification errors.
var (
	ErrUntrustedIssuer = errors.New("tlssim: certificate issuer not trusted")
	ErrBadSignature    = errors.New("tlssim: certificate signature invalid")
	ErrHostMismatch    = errors.New("tlssim: certificate does not match host")
)

// Verify checks that cert chains to a trusted CA and matches host.
func (p *Pool) Verify(cert Certificate, host string) error {
	ca, ok := p.cas[cert.Issuer]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUntrustedIssuer, cert.Issuer)
	}
	if ca.sign(cert) != cert.Sig {
		return fmt.Errorf("%w: subject %q", ErrBadSignature, cert.Subject)
	}
	if !cert.MatchesHost(host) {
		return fmt.Errorf("%w: %q for host %q", ErrHostMismatch, cert.Subject, host)
	}
	return nil
}

// ---------------------------------------------------------------------
// Handshake framing
// ---------------------------------------------------------------------

// Wire framing constants. A ClientHello is a text preamble followed by
// the application request; a ServerHello is a JSON certificate followed
// by the application response. A server that answers a ClientHello with
// anything not starting with helloRespMagic has "stripped" TLS — the
// downgrade signature the test suite looks for.
const (
	helloMagic     = "TLSSIM-HELLO "
	helloRespMagic = "TLSSIM-CERT "
)

// EncodeClientHello frames an application request for host over TLS.
// The frame is staged in a pooled serialize buffer and copied out at
// exact size, so the hot handshake path costs one allocation.
func EncodeClientHello(host string, inner []byte) []byte {
	sb := capture.GetSerializeBuffer()
	defer sb.Release()
	front := sb.Prepend(len(helloMagic) + len(host) + 1 + len(inner))
	n := copy(front, helloMagic)
	n += copy(front[n:], host)
	front[n] = '\n'
	copy(front[n+1:], inner)
	out := make([]byte, len(front))
	copy(out, front)
	return out
}

// ParseClientHello splits a framed hello into SNI and inner request.
func ParseClientHello(data []byte) (host string, inner []byte, err error) {
	rest, ok := bytes.CutPrefix(data, []byte(helloMagic))
	if !ok {
		return "", nil, errors.New("tlssim: not a client hello")
	}
	line, inner, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return "", nil, errors.New("tlssim: truncated client hello")
	}
	return string(line), inner, nil
}

// IsClientHello reports whether data is framed as a ClientHello.
func IsClientHello(data []byte) bool {
	return bytes.HasPrefix(data, []byte(helloMagic))
}

// EncodeServerHello frames a response: certificate then payload. An
// encoding failure is returned, not panicked: handshake synthesis runs
// inside packet handlers, where a panic would take down a whole
// campaign instead of one exchange.
func EncodeServerHello(cert Certificate, inner []byte) ([]byte, error) {
	cj, err := json.Marshal(cert)
	if err != nil {
		return nil, fmt.Errorf("tlssim: encoding certificate: %w", err)
	}
	sb := capture.GetSerializeBuffer()
	defer sb.Release()
	front := sb.Prepend(len(helloRespMagic) + len(cj) + 1 + len(inner))
	n := copy(front, helloRespMagic)
	n += copy(front[n:], cj)
	front[n] = '\n'
	copy(front[n+1:], inner)
	out := make([]byte, len(front))
	copy(out, front)
	return out, nil
}

// ParseServerHello splits a framed server hello. A parse failure on
// bytes that do not carry the magic indicates a TLS downgrade (the
// server or a middlebox answered in cleartext).
func ParseServerHello(data []byte) (Certificate, []byte, error) {
	rest, ok := bytes.CutPrefix(data, []byte(helloRespMagic))
	if !ok {
		return Certificate{}, nil, ErrDowngraded
	}
	line, inner, ok := bytes.Cut(rest, []byte{'\n'})
	if !ok {
		return Certificate{}, nil, errors.New("tlssim: truncated server hello")
	}
	var cert Certificate
	if err := json.Unmarshal(line, &cert); err != nil {
		return Certificate{}, nil, fmt.Errorf("tlssim: bad certificate frame: %w", err)
	}
	return cert, inner, nil
}

// ErrDowngraded marks a response that should have been TLS but was not.
var ErrDowngraded = errors.New("tlssim: connection downgraded to cleartext")

func fnv(s string) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001B3
	}
	return h
}
