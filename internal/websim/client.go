package websim

import (
	"errors"
	"fmt"
	"net/netip"
	"net/url"
	"strconv"
	"strings"

	"vpnscope/internal/capture"
	"vpnscope/internal/dnssim"
	"vpnscope/internal/netsim"
	"vpnscope/internal/tlssim"
)

// Resolver turns a hostname into an address using the client's
// configured DNS path (typically Client.Resolve over the stack).
type Resolver func(host string) (netip.Addr, error)

// FetchResult is the outcome of fetching one URL.
type FetchResult struct {
	URL      string
	Response *Response
	// Cert is the presented certificate for HTTPS fetches.
	Cert tlssim.Certificate
	// TLS reports whether the final hop was TLS.
	TLS bool
	// Downgraded is set when a TLS response came back as cleartext.
	Downgraded bool
}

// Client fetches URLs over a netsim Stack, performing DNS resolution via
// the stack's configured resolvers and following HTTP redirects. It is
// the simulator's stand-in for the Selenium-driven Chrome instance the
// paper used.
type Client struct {
	Stack *netsim.Stack
	// MaxRedirects bounds a redirect chase (default 10).
	MaxRedirects int

	nextID uint16
	// dnsScratch is the reusable query-encode buffer; the stack copies
	// what it keeps, so the wire bytes are dead once QueryUDP returns.
	dnsScratch []byte
	// dnsMsg is the reusable decoded-response message (DecodeInto
	// copies everything it keeps out of the wire bytes) and dnsIntern
	// deduplicates the answer name strings across the client's
	// thousands of lookups of the same static hostnames.
	dnsMsg    dnssim.Message
	dnsIntern dnssim.Interner
	// reqBuf is the reusable request-encode buffer; both the plain-TCP
	// exchange and the client-hello framer copy the bytes before the
	// next fetch reuses it. helloBuf stages the framed client hello the
	// same way.
	reqBuf   []byte
	helloBuf []byte

	// Intern, when set, replaces the client's private DNS-name interner
	// with a longer-lived one (the campaign runner hands every slot's
	// client the worker world's interner, so the table stays warm
	// across slots instead of re-learning the same static names).
	Intern *dnssim.Interner
	// Certs, when set, interns decoded server-hello certificates the
	// same way (see tlssim.CertCache).
	Certs *tlssim.CertCache

	// Single-entry memos for the failure wraps below. A failing slot
	// surfaces the same (host, cause) failure dozens of times in a row
	// — retries, redirect chains, subresource fetches — and the netsim
	// layer interns its exchange errors, so cause identity is stable.
	lastResolve  resolveErrKey
	lastResolveE error
	lastNX       nxErrKey
	lastNXE      error
	lastEmpty    emptyErrKey
	lastEmptyE   error
}

type resolveErrKey struct {
	host   string
	server netip.Addr
	cause  error
}

type nxErrKey struct {
	host  string
	rcode int
}

type emptyErrKey struct {
	url      string
	fetching bool // "fetching %q" vs "resolving %q"
	cause    error
}

// wrappedErr is a pre-rendered fmt.Errorf("...: %w", ..., cause)
// equivalent: same text, same errors.Is/As behavior via Unwrap.
type wrappedErr struct {
	cause error
	msg   string
}

func (e *wrappedErr) Error() string { return e.msg }
func (e *wrappedErr) Unwrap() error { return e.cause }

// interner returns the client's effective DNS interner.
func (c *Client) interner() *dnssim.Interner {
	if c.Intern != nil {
		return c.Intern
	}
	return &c.dnsIntern
}

// errResolveVia renders fmt.Errorf("resolving %q via %v: %w", host,
// server, cause), memoized on the last distinct key.
func (c *Client) errResolveVia(host string, server netip.Addr, cause error) error {
	key := resolveErrKey{host, server, cause}
	if key != c.lastResolve || c.lastResolveE == nil {
		b := make([]byte, 0, 96)
		b = append(b, "resolving "...)
		b = strconv.AppendQuote(b, host)
		b = append(b, " via "...)
		b = server.AppendTo(b)
		b = append(b, ": "...)
		b = append(b, cause.Error()...)
		c.lastResolve, c.lastResolveE = key, &wrappedErr{cause, string(b)}
	}
	return c.lastResolveE
}

// errNXDomain renders fmt.Errorf("%w: %q (rcode %d)", ErrNXDomain,
// host, rcode), memoized on the last distinct key.
func (c *Client) errNXDomain(host string, rcode int) error {
	key := nxErrKey{host, rcode}
	if key != c.lastNX || c.lastNXE == nil {
		b := make([]byte, 0, 96)
		b = append(b, ErrNXDomain.Error()...)
		b = append(b, ": "...)
		b = strconv.AppendQuote(b, host)
		b = append(b, " (rcode "...)
		b = strconv.AppendInt(b, int64(rcode), 10)
		b = append(b, ')')
		c.lastNX, c.lastNXE = key, &wrappedErr{ErrNXDomain, string(b)}
	}
	return c.lastNXE
}

// errWrapURL renders fmt.Errorf("fetching %q: %w", url, cause) (or the
// "resolving" variant), memoized on the last distinct key.
func (c *Client) errWrapURL(fetching bool, url string, cause error) error {
	key := emptyErrKey{url, fetching, cause}
	if key != c.lastEmpty || c.lastEmptyE == nil {
		b := make([]byte, 0, 96)
		if fetching {
			b = append(b, "fetching "...)
		} else {
			b = append(b, "resolving "...)
		}
		b = strconv.AppendQuote(b, url)
		b = append(b, ": "...)
		b = append(b, cause.Error()...)
		c.lastEmpty, c.lastEmptyE = key, &wrappedErr{cause, string(b)}
	}
	return c.lastEmptyE
}

// Client errors.
var (
	ErrNoResolver     = errors.New("websim: no DNS resolver configured")
	ErrNXDomain       = errors.New("websim: name does not resolve")
	ErrTooManyHops    = errors.New("websim: too many redirects")
	ErrBadURL         = errors.New("websim: cannot parse URL")
	ErrEmptyResponse  = errors.New("websim: empty response")
	ErrCertificate    = errors.New("websim: certificate verification failed")
	ErrNotHTTPishPort = errors.New("websim: unsupported URL scheme")
)

// Resolve performs a DNS query for host through the stack's first
// configured resolver (A by default, AAAA when v6 is true).
func (c *Client) Resolve(host string, v6 bool) (netip.Addr, error) {
	server, ok := c.Stack.Resolver0()
	if !ok {
		return netip.Addr{}, ErrNoResolver
	}
	return c.ResolveVia(server, host, v6)
}

// ResolveVia queries a specific resolver address.
func (c *Client) ResolveVia(server netip.Addr, host string, v6 bool) (netip.Addr, error) {
	qtype := dnssim.TypeA
	if v6 {
		qtype = dnssim.TypeAAAA
	}
	c.nextID++
	wire, err := dnssim.AppendQueryEncode(c.dnsScratch[:0], c.nextID, host, qtype)
	if err != nil {
		return netip.Addr{}, err
	}
	c.dnsScratch = wire
	respWire, err := c.Stack.QueryUDP(server, 53, wire)
	if err != nil {
		return netip.Addr{}, c.errResolveVia(host, server, err)
	}
	if respWire == nil {
		return netip.Addr{}, c.errWrapURL(false, host, ErrEmptyResponse)
	}
	if err := dnssim.DecodeInto(&c.dnsMsg, respWire, c.interner()); err != nil {
		return netip.Addr{}, c.errWrapURL(false, host, err)
	}
	msg := &c.dnsMsg
	if msg.RCode != dnssim.RCodeOK || len(msg.Answers) == 0 {
		return netip.Addr{}, c.errNXDomain(host, int(msg.RCode))
	}
	return msg.Answers[0].Addr, nil
}

// Get fetches rawURL, following redirects. Each element of the returned
// slice is one hop of the redirect chain; the last is the final
// response.
func (c *Client) Get(rawURL string) ([]FetchResult, error) {
	max := c.MaxRedirects
	if max <= 0 {
		max = 10
	}
	var chain []FetchResult
	current := rawURL
	for hop := 0; hop <= max; hop++ {
		var res FetchResult
		if err := c.fetchOne(current, &res); err != nil {
			return chain, err
		}
		chain = append(chain, res)
		if res.Response == nil || res.Response.Status < 300 || res.Response.Status >= 400 {
			return chain, nil
		}
		loc, ok := res.Response.Header("Location")
		if !ok {
			return chain, nil
		}
		next, err := resolveRef(current, loc)
		if err != nil {
			return chain, err
		}
		current = next
	}
	return chain, ErrTooManyHops
}

// fetchOne performs a single HTTP(S) request with no redirect chasing,
// filling out (which stays caller-owned so redirect chains can keep the
// hop records on the stack or in a grown slice).
func (c *Client) fetchOne(rawURL string, out *FetchResult) error {
	scheme, host, path, ok := splitURL(rawURL)
	if !ok {
		// General shapes (ports, userinfo, query, escapes) take the
		// full parser.
		u, err := url.Parse(rawURL)
		if err != nil {
			return fmt.Errorf("%w: %q: %v", ErrBadURL, rawURL, err)
		}
		scheme, host, path = u.Scheme, u.Hostname(), u.Path
	}
	if path == "" {
		path = "/"
	}
	var addr netip.Addr
	if !looksLikeIP(host) {
		// Hostnames never look like address literals, so skip the
		// ParseAddr attempt (whose error return allocates) entirely.
		var err error
		addr, err = c.Resolve(host, false)
		if err != nil {
			return err
		}
	} else if ip, perr := netip.ParseAddr(host); perr == nil {
		addr = ip
	} else {
		var err error
		addr, err = c.Resolve(host, false)
		if err != nil {
			return err
		}
	}
	c.reqBuf = appendGET(c.reqBuf[:0], host, path)
	out.URL = rawURL
	switch scheme {
	case "http":
		raw, err := c.Stack.ExchangeTCP(addr, 80, c.reqBuf)
		if err != nil {
			return err
		}
		if raw == nil {
			return c.errWrapURL(true, rawURL, ErrEmptyResponse)
		}
		resp, err := ParseResponse(raw)
		if err != nil {
			return err
		}
		out.Response = resp
		return nil
	case "https":
		c.helloBuf = tlssim.AppendClientHello(c.helloBuf[:0], host, c.reqBuf)
		raw, err := c.Stack.ExchangeTCP(addr, 443, c.helloBuf)
		if err != nil {
			return err
		}
		if raw == nil {
			return c.errWrapURL(true, rawURL, ErrEmptyResponse)
		}
		cert, inner, err := c.Certs.ParseServerHello(raw)
		if errors.Is(err, tlssim.ErrDowngraded) {
			// Cleartext where TLS was expected: surface, don't fail.
			resp, perr := ParseResponse(raw)
			if perr != nil {
				return err
			}
			out.Response, out.Downgraded = resp, true
			return nil
		}
		if err != nil {
			return err
		}
		resp, err := ParseResponse(inner)
		if err != nil {
			return err
		}
		out.Response, out.Cert, out.TLS = resp, cert, true
		return nil
	default:
		return fmt.Errorf("%w: %q", ErrNotHTTPishPort, scheme)
	}
}

// looksLikeIP reports whether host could be an IP literal: anything
// with a colon (every IPv6 form) or made purely of digits and dots
// (every IPv4 form). It may claim non-addresses look like IPs — those
// still go through ParseAddr — but it never misses a real literal, so
// hostnames skip the parser's allocation-heavy error path.
func looksLikeIP(host string) bool {
	if strings.IndexByte(host, ':') >= 0 {
		return true
	}
	for i := 0; i < len(host); i++ {
		if c := host[i]; (c < '0' || c > '9') && c != '.' {
			return false
		}
	}
	return len(host) > 0
}

// appendGET serializes the standard measurement GET request onto dst:
// byte-identical to NewRequest("GET", host, path).AppendEncode(dst),
// without materializing the Request and its header slice.
func appendGET(dst []byte, host, path string) []byte {
	dst = append(dst, "GET "...)
	dst = append(dst, path...)
	dst = append(dst, " HTTP/1.1\r\nHost: "...)
	dst = append(dst, host...)
	dst = append(dst, "\r\nuser-agent: vpnscope/1.0 (measurement; +https://vpnscope.test)\r\n"...)
	dst = append(dst, "Accept: */*\r\n"...)
	dst = append(dst, "X-VPNScope-Canary: qJx7-canary-ordered\r\n"...)
	dst = append(dst, "accept-language: en-US,en;q=0.9\r\n\r\n"...)
	return dst
}

// splitURL splits a plain absolute http(s) URL of the shape every
// simulated resource uses — no userinfo, port, query, fragment, or
// percent-escapes. ok=false sends the caller to net/url.
func splitURL(raw string) (scheme, host, path string, ok bool) {
	switch {
	case strings.HasPrefix(raw, "http://"):
		scheme, raw = "http", raw[len("http://"):]
	case strings.HasPrefix(raw, "https://"):
		scheme, raw = "https", raw[len("https://"):]
	default:
		return "", "", "", false
	}
	if i := strings.IndexByte(raw, '/'); i >= 0 {
		host, path = raw[:i], raw[i:]
	} else {
		host = raw
	}
	if host == "" || strings.ContainsAny(host, ":@?#%") || strings.ContainsAny(path, "?#%") {
		return "", "", "", false
	}
	return scheme, host, path, true
}

// resolveRef resolves a possibly relative redirect Location against the
// current URL.
func resolveRef(base, ref string) (string, error) {
	// Fast paths for the two shapes the simulated web emits: an
	// absolute http(s) Location (returned verbatim — resolution is the
	// identity for absolute refs) and a root-relative path against a
	// plain absolute base. Both are gated on splitURL's conservative
	// shape check so anything unusual still takes net/url.
	if _, _, path, ok := splitURL(ref); ok && plainURLPath(path) {
		if _, _, _, ok := splitURL(base); ok {
			return ref, nil
		}
	} else if len(ref) > 1 && ref[0] == '/' && ref[1] != '/' && plainURLPath(ref) {
		if scheme, host, _, ok := splitURL(base); ok {
			return scheme + "://" + host + ref, nil
		}
	}
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("%w: %q", ErrBadURL, base)
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("%w: %q", ErrBadURL, ref)
	}
	return b.ResolveReference(r).String(), nil
}

// plainURLPath reports whether path survives net/url's parse→String
// round trip unchanged: only bytes String never escapes, and no dot
// segments for ResolveReference to remove. (Every "." or ".." segment
// in a rooted path starts with "/.", so one substring check covers
// them all.)
func plainURLPath(path string) bool {
	for i := 0; i < len(path); i++ {
		c := path[i]
		switch {
		case 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9':
		case c == '-' || c == '.' || c == '_' || c == '~' || c == '/':
		case c == '!' || c == '$' || c == '&' || c == '\'' || c == '(' || c == ')':
		case c == '*' || c == '+' || c == ',' || c == ';' || c == '=' || c == ':' || c == '@':
		default:
			return false
		}
	}
	return !strings.Contains(path, "/.")
}

// LoadPage fetches a page and all subresources its DOM references,
// returning the final page result, the set of hostnames contacted, and
// the DOM body. This mirrors the paper's Selenium DOM-and-request
// collection.
func (c *Client) LoadPage(rawURL string) (page *FetchResult, hosts []string, dom string, err error) {
	chain, err := c.Get(rawURL)
	if err != nil {
		return nil, nil, "", err
	}
	final := &chain[len(chain)-1]
	dom = string(final.Response.Body)
	seen := map[string]bool{}
	addHost := func(raw string) {
		hn := ""
		if _, h, _, ok := splitURL(raw); ok {
			hn = h
		} else if u, err := url.Parse(raw); err == nil {
			hn = u.Hostname()
		}
		if hn != "" && !seen[hn] {
			seen[hn] = true
			hosts = append(hosts, hn)
		}
	}
	for _, hop := range chain {
		addHost(hop.URL)
	}
	for _, src := range ExtractScriptSrcs(dom) {
		addHost(src)
		// Best-effort subresource fetch; failures (e.g. unknown ad
		// hosts) still count as load attempts, as in a real browser.
		_, _ = c.Get(src)
	}
	return final, hosts, dom, nil
}

// ExtractScriptSrcs pulls script src URLs out of a DOM.
func ExtractScriptSrcs(dom string) []string {
	var out []string
	rest := dom
	for {
		i := strings.Index(rest, `src="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`src="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j:]
	}
}

// Captures returns the stack's physical-interface capture sink, which
// tests inspect for leaked cleartext.
func (c *Client) Captures() []capture.Record {
	return c.Stack.Interface(netsim.PhysicalName).Sink.Records()
}
