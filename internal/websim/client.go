package websim

import (
	"errors"
	"fmt"
	"net/netip"
	"net/url"
	"strings"

	"vpnscope/internal/capture"
	"vpnscope/internal/dnssim"
	"vpnscope/internal/netsim"
	"vpnscope/internal/tlssim"
)

// Resolver turns a hostname into an address using the client's
// configured DNS path (typically Client.Resolve over the stack).
type Resolver func(host string) (netip.Addr, error)

// FetchResult is the outcome of fetching one URL.
type FetchResult struct {
	URL      string
	Response *Response
	// Cert is the presented certificate for HTTPS fetches.
	Cert tlssim.Certificate
	// TLS reports whether the final hop was TLS.
	TLS bool
	// Downgraded is set when a TLS response came back as cleartext.
	Downgraded bool
}

// Client fetches URLs over a netsim Stack, performing DNS resolution via
// the stack's configured resolvers and following HTTP redirects. It is
// the simulator's stand-in for the Selenium-driven Chrome instance the
// paper used.
type Client struct {
	Stack *netsim.Stack
	// MaxRedirects bounds a redirect chase (default 10).
	MaxRedirects int

	nextID uint16
	// dnsScratch is the reusable query-encode buffer; the stack copies
	// what it keeps, so the wire bytes are dead once QueryUDP returns.
	dnsScratch []byte
	// dnsMsg is the reusable decoded-response message (DecodeInto
	// copies everything it keeps out of the wire bytes) and dnsIntern
	// deduplicates the answer name strings across the client's
	// thousands of lookups of the same static hostnames.
	dnsMsg    dnssim.Message
	dnsIntern dnssim.Interner
	// reqBuf is the reusable request-encode buffer; both the plain-TCP
	// exchange and the client-hello framer copy the bytes before the
	// next fetch reuses it.
	reqBuf []byte
}

// Client errors.
var (
	ErrNoResolver     = errors.New("websim: no DNS resolver configured")
	ErrNXDomain       = errors.New("websim: name does not resolve")
	ErrTooManyHops    = errors.New("websim: too many redirects")
	ErrBadURL         = errors.New("websim: cannot parse URL")
	ErrEmptyResponse  = errors.New("websim: empty response")
	ErrCertificate    = errors.New("websim: certificate verification failed")
	ErrNotHTTPishPort = errors.New("websim: unsupported URL scheme")
)

// Resolve performs a DNS query for host through the stack's first
// configured resolver (A by default, AAAA when v6 is true).
func (c *Client) Resolve(host string, v6 bool) (netip.Addr, error) {
	server, ok := c.Stack.Resolver0()
	if !ok {
		return netip.Addr{}, ErrNoResolver
	}
	return c.ResolveVia(server, host, v6)
}

// ResolveVia queries a specific resolver address.
func (c *Client) ResolveVia(server netip.Addr, host string, v6 bool) (netip.Addr, error) {
	qtype := dnssim.TypeA
	if v6 {
		qtype = dnssim.TypeAAAA
	}
	c.nextID++
	wire, err := dnssim.NewQuery(c.nextID, host, qtype).AppendEncode(c.dnsScratch[:0])
	if err != nil {
		return netip.Addr{}, err
	}
	c.dnsScratch = wire
	respWire, err := c.Stack.QueryUDP(server, 53, wire)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("resolving %q via %v: %w", host, server, err)
	}
	if respWire == nil {
		return netip.Addr{}, fmt.Errorf("resolving %q: %w", host, ErrEmptyResponse)
	}
	if err := dnssim.DecodeInto(&c.dnsMsg, respWire, &c.dnsIntern); err != nil {
		return netip.Addr{}, fmt.Errorf("resolving %q: %w", host, err)
	}
	msg := &c.dnsMsg
	if msg.RCode != dnssim.RCodeOK || len(msg.Answers) == 0 {
		return netip.Addr{}, fmt.Errorf("%w: %q (rcode %d)", ErrNXDomain, host, msg.RCode)
	}
	return msg.Answers[0].Addr, nil
}

// Get fetches rawURL, following redirects. Each element of the returned
// slice is one hop of the redirect chain; the last is the final
// response.
func (c *Client) Get(rawURL string) ([]FetchResult, error) {
	max := c.MaxRedirects
	if max <= 0 {
		max = 10
	}
	var chain []FetchResult
	current := rawURL
	for hop := 0; hop <= max; hop++ {
		res, err := c.fetchOne(current)
		if err != nil {
			return chain, err
		}
		chain = append(chain, *res)
		if res.Response == nil || res.Response.Status < 300 || res.Response.Status >= 400 {
			return chain, nil
		}
		loc, ok := res.Response.Header("Location")
		if !ok {
			return chain, nil
		}
		next, err := resolveRef(current, loc)
		if err != nil {
			return chain, err
		}
		current = next
	}
	return chain, ErrTooManyHops
}

// fetchOne performs a single HTTP(S) request with no redirect chasing.
func (c *Client) fetchOne(rawURL string) (*FetchResult, error) {
	scheme, host, path, ok := splitURL(rawURL)
	if !ok {
		// General shapes (ports, userinfo, query, escapes) take the
		// full parser.
		u, err := url.Parse(rawURL)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadURL, rawURL, err)
		}
		scheme, host, path = u.Scheme, u.Hostname(), u.Path
	}
	if path == "" {
		path = "/"
	}
	var addr netip.Addr
	if ip, perr := netip.ParseAddr(host); perr == nil {
		addr = ip
	} else {
		var err error
		addr, err = c.Resolve(host, false)
		if err != nil {
			return nil, err
		}
	}
	req := NewRequest("GET", host, path)
	c.reqBuf = req.AppendEncode(c.reqBuf[:0])
	switch scheme {
	case "http":
		raw, err := c.Stack.ExchangeTCP(addr, 80, c.reqBuf)
		if err != nil {
			return nil, err
		}
		if raw == nil {
			return nil, fmt.Errorf("fetching %q: %w", rawURL, ErrEmptyResponse)
		}
		resp, err := ParseResponse(raw)
		if err != nil {
			return nil, err
		}
		return &FetchResult{URL: rawURL, Response: resp}, nil
	case "https":
		hello := tlssim.EncodeClientHello(host, c.reqBuf)
		raw, err := c.Stack.ExchangeTCP(addr, 443, hello)
		if err != nil {
			return nil, err
		}
		if raw == nil {
			return nil, fmt.Errorf("fetching %q: %w", rawURL, ErrEmptyResponse)
		}
		cert, inner, err := tlssim.ParseServerHello(raw)
		if errors.Is(err, tlssim.ErrDowngraded) {
			// Cleartext where TLS was expected: surface, don't fail.
			resp, perr := ParseResponse(raw)
			if perr != nil {
				return nil, err
			}
			return &FetchResult{URL: rawURL, Response: resp, Downgraded: true}, nil
		}
		if err != nil {
			return nil, err
		}
		resp, err := ParseResponse(inner)
		if err != nil {
			return nil, err
		}
		return &FetchResult{URL: rawURL, Response: resp, Cert: cert, TLS: true}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrNotHTTPishPort, scheme)
	}
}

// splitURL splits a plain absolute http(s) URL of the shape every
// simulated resource uses — no userinfo, port, query, fragment, or
// percent-escapes. ok=false sends the caller to net/url.
func splitURL(raw string) (scheme, host, path string, ok bool) {
	switch {
	case strings.HasPrefix(raw, "http://"):
		scheme, raw = "http", raw[len("http://"):]
	case strings.HasPrefix(raw, "https://"):
		scheme, raw = "https", raw[len("https://"):]
	default:
		return "", "", "", false
	}
	if i := strings.IndexByte(raw, '/'); i >= 0 {
		host, path = raw[:i], raw[i:]
	} else {
		host = raw
	}
	if host == "" || strings.ContainsAny(host, ":@?#%") || strings.ContainsAny(path, "?#%") {
		return "", "", "", false
	}
	return scheme, host, path, true
}

// resolveRef resolves a possibly relative redirect Location against the
// current URL.
func resolveRef(base, ref string) (string, error) {
	b, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("%w: %q", ErrBadURL, base)
	}
	r, err := url.Parse(ref)
	if err != nil {
		return "", fmt.Errorf("%w: %q", ErrBadURL, ref)
	}
	return b.ResolveReference(r).String(), nil
}

// LoadPage fetches a page and all subresources its DOM references,
// returning the final page result, the set of hostnames contacted, and
// the DOM body. This mirrors the paper's Selenium DOM-and-request
// collection.
func (c *Client) LoadPage(rawURL string) (page *FetchResult, hosts []string, dom string, err error) {
	chain, err := c.Get(rawURL)
	if err != nil {
		return nil, nil, "", err
	}
	final := &chain[len(chain)-1]
	dom = string(final.Response.Body)
	seen := map[string]bool{}
	addHost := func(raw string) {
		hn := ""
		if _, h, _, ok := splitURL(raw); ok {
			hn = h
		} else if u, err := url.Parse(raw); err == nil {
			hn = u.Hostname()
		}
		if hn != "" && !seen[hn] {
			seen[hn] = true
			hosts = append(hosts, hn)
		}
	}
	for _, hop := range chain {
		addHost(hop.URL)
	}
	for _, src := range ExtractScriptSrcs(dom) {
		addHost(src)
		// Best-effort subresource fetch; failures (e.g. unknown ad
		// hosts) still count as load attempts, as in a real browser.
		_, _ = c.Get(src)
	}
	return final, hosts, dom, nil
}

// ExtractScriptSrcs pulls script src URLs out of a DOM.
func ExtractScriptSrcs(dom string) []string {
	var out []string
	rest := dom
	for {
		i := strings.Index(rest, `src="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`src="`):]
		j := strings.IndexByte(rest, '"')
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j:]
	}
}

// Captures returns the stack's physical-interface capture sink, which
// tests inspect for leaked cleartext.
func (c *Client) Captures() []capture.Record {
	return c.Stack.Interface(netsim.PhysicalName).Sink.Records()
}
