package websim

import (
	"fmt"
	"net/netip"
	"strings"

	"vpnscope/internal/netsim"
	"vpnscope/internal/tlssim"
)

// Category classifies a test site; the paper chose sensitive categories
// to maximize manipulation opportunities.
type Category string

// Site categories.
const (
	CatNews       Category = "news"
	CatPolitics   Category = "politics"
	CatPorn       Category = "pornography"
	CatGovernment Category = "government"
	CatDefense    Category = "defense"
	CatFileShare  Category = "filesharing"
	CatShopping   Category = "shopping"
	CatSocial     Category = "social"
	CatHoneysite  Category = "honeysite"
	CatUtility    Category = "utility"
)

// Site is one simulated web property.
type Site struct {
	HostName string
	Category Category
	// NoHTTPSUpgrade keeps the site serving plain HTTP without
	// redirecting to HTTPS — the paper chose such sites deliberately to
	// maximize the opportunity for manipulation.
	NoHTTPSUpgrade bool
	// Resources are the subresource URLs the homepage references; the
	// DOM-collection test fetches them and diffs the loaded set.
	Resources []string
	// AdSlots marks the honeysite that carries ad-inclusion markup with
	// invalid publisher identifiers.
	AdSlots bool
	// Cert is the site's TLS certificate (ground truth for the
	// interception test).
	Cert tlssim.Certificate

	Host *netsim.Host

	// Serving scratch. A world is driven by one goroutine at a time
	// (the same contract dnssim.Resolver's reply scratch relies on), so
	// the site can reuse its homepage bytes, per-resource script
	// bodies, response struct, and encode buffer across requests.
	dom      string
	domBody  []byte
	jsBodies map[string][]byte
	req      Request
	resp     Response
	encBuf   []byte
	tlsBuf   []byte
	// redirects caches the encoded HTTPS-upgrade redirect per request
	// path; a campaign fetches the same handful of paths from a site
	// thousands of times.
	redirects map[string][]byte
}

// Static response furniture shared by every site; never mutated.
var (
	siteHTMLHeaders = []Header{
		{"Content-Type", "text/html; charset=utf-8"},
		{"Server", "simhttpd/1.0"},
	}
	siteJSHeaders = []Header{{"Content-Type", "application/javascript"}}
	notFoundBody  = []byte("not found")
)

// DOM returns the site's homepage document. It is static per site —
// honeysites exist precisely so any modification is attributable to the
// network path, not to dynamic content — so the first render is cached.
func (s *Site) DOM() string {
	if s.dom != "" {
		return s.dom
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<!doctype html>\n<html>\n<head><title>%s</title></head>\n<body>\n", s.HostName)
	fmt.Fprintf(&b, "<h1>%s (%s)</h1>\n", s.HostName, s.Category)
	fmt.Fprintf(&b, "<p>Static reference content for %s.</p>\n", s.HostName)
	if s.AdSlots {
		b.WriteString(`<div class="ad-unit" data-publisher="pub-0000000000000000" data-slot="invalid"></div>` + "\n")
		b.WriteString(`<script src="http://adnet.example/ads.js" data-publisher="pub-0000000000000000"></script>` + "\n")
	}
	for _, r := range s.Resources {
		fmt.Fprintf(&b, "<script src=%q></script>\n", r)
	}
	b.WriteString("</body>\n</html>\n")
	s.dom = b.String()
	s.domBody = []byte(s.dom)
	return s.dom
}

// serve handles one parsed HTTP request for the site. The returned
// Response is the site's reusable scratch — callers encode it before
// the next request reaches the site.
func (s *Site) serve(req *Request) *Response {
	if req.Method != "GET" {
		s.resp = Response{Status: 404}
		return &s.resp
	}
	switch {
	case req.Path == "/" || req.Path == "/index.html":
		s.DOM()
		s.resp = Response{Status: 200, Headers: siteHTMLHeaders, Body: s.domBody}
		return &s.resp
	case strings.HasSuffix(req.Path, ".js"):
		body, ok := s.jsBodies[req.Path]
		if !ok {
			body = []byte(fmt.Sprintf("/* %s%s */ window.loaded=true;\n", s.HostName, req.Path))
			if s.jsBodies == nil {
				s.jsBodies = make(map[string][]byte)
			}
			s.jsBodies[req.Path] = body
		}
		s.resp = Response{Status: 200, Headers: siteJSHeaders, Body: body}
		return &s.resp
	default:
		s.resp = Response{Status: 404, Body: notFoundBody}
		return &s.resp
	}
}

// encode serializes resp into the site's reusable wire buffer (safe by
// the same one-exchange-at-a-time contract as serve's scratch: netsim
// copies a handler's returned payload into the reply packet before the
// next exchange with the host begins).
func (s *Site) encode(resp *Response) []byte {
	s.encBuf = resp.AppendEncode(s.encBuf[:0])
	return s.encBuf
}

// Install wires the site onto a netsim host: plain HTTP on :80 (or an
// upgrade redirect when the site enforces HTTPS) and TLS on :443.
func (s *Site) Install(host *netsim.Host) {
	s.Host = host
	host.HandleTCP(80, func(_ netip.Addr, _ uint16, payload []byte) []byte {
		if err := ParseRequestInto(&s.req, payload); err != nil {
			return (&Response{Status: 400, Body: []byte(err.Error())}).Encode()
		}
		if !s.NoHTTPSUpgrade {
			return s.upgradeRedirect(s.req.Path)
		}
		return s.encode(s.serve(&s.req))
	})
	host.HandleTCP(443, func(_ netip.Addr, _ uint16, payload []byte) []byte {
		// The simulated listener never branches on SNI, so skip
		// extracting it.
		inner, err := tlssim.ClientHelloInner(payload)
		if err != nil {
			return nil // not TLS: silently dropped, like a real listener
		}
		if err := ParseRequestInto(&s.req, inner); err != nil {
			return s.tlsFrame((&Response{Status: 400}).Encode())
		}
		return s.tlsFrame(s.encode(s.serve(&s.req)))
	})
}

// upgradeRedirect returns the encoded HTTPS-upgrade redirect for path,
// cached after the first request for it.
func (s *Site) upgradeRedirect(path string) []byte {
	if wire, ok := s.redirects[path]; ok {
		return wire
	}
	wire := Redirect("https://" + s.HostName + path).Encode()
	if s.redirects == nil {
		s.redirects = make(map[string][]byte, 8)
	}
	if len(s.redirects) < 64 {
		s.redirects[path] = wire
	}
	return wire
}

// tlsFrame wraps a response in a server hello using the site's reusable
// frame buffer (same one-exchange-at-a-time contract as encode); an
// encoding failure drops the response (the client records an
// unreachable host) rather than killing the handler.
func (s *Site) tlsFrame(inner []byte) []byte {
	framed, err := tlssim.AppendServerHello(s.tlsBuf[:0], s.Cert, inner)
	if err != nil {
		return nil
	}
	s.tlsBuf = framed
	return framed
}

// EchoService is the header-echo endpoint: it returns exactly the raw
// request bytes it received as the response body, so a client can diff
// what it sent against what the server saw.
type EchoService struct {
	HostName string
	Host     *netsim.Host
}

// Install wires the echo service onto a host (plain HTTP only).
func (e *EchoService) Install(host *netsim.Host) {
	e.Host = host
	host.HandleTCP(80, func(_ netip.Addr, _ uint16, payload []byte) []byte {
		return (&Response{
			Status:  200,
			Headers: []Header{{"Content-Type", "text/plain"}},
			Body:    payload,
		}).Encode()
	})
}

// WebRTCProbeService simulates the WebRTC-leak test pages of §7's
// related work: its homepage carries an ICE-gathering script marker,
// and the /report endpoint receives whatever candidate addresses the
// visiting browser's WebRTC stack revealed, echoing them back so the
// "page" (and therefore the auditor) can see them.
type WebRTCProbeService struct {
	HostName string
	Host     *netsim.Host
}

// WebRTCMarker is the script marker a gathering-capable browser reacts
// to on the probe page.
const WebRTCMarker = "webrtc-ice-gather"

// Install wires the probe service onto a host (plain HTTP only).
func (s *WebRTCProbeService) Install(host *netsim.Host) {
	s.Host = host
	host.HandleTCP(80, func(src netip.Addr, _ uint16, payload []byte) []byte {
		req, err := ParseRequest(payload)
		if err != nil {
			return (&Response{Status: 400}).Encode()
		}
		switch {
		case req.Method == "GET" && req.Path == "/":
			body := "<!doctype html>\n<html><body>" +
				`<script class="` + WebRTCMarker + `">/* gather ICE candidates and POST to /report */</script>` +
				"</body></html>"
			return (&Response{
				Status:  200,
				Headers: []Header{{"Content-Type", "text/html"}},
				Body:    []byte(body),
			}).Encode()
		case req.Method == "POST" && req.Path == "/report":
			// The page reflects the candidate list plus the apparent
			// (server-observed) address, like real leak-test pages do.
			body := "seen=" + src.String() + "\ncandidates=" + string(req.Body)
			return (&Response{
				Status:  200,
				Headers: []Header{{"Content-Type", "text/plain"}},
				Body:    []byte(body),
			}).Encode()
		default:
			return (&Response{Status: 404}).Encode()
		}
	})
}

// IPEchoService reports the requester's source address (an ipify-style
// "what is my IP" endpoint) — how the measurement suite learns a tunnel's
// egress address without any inside knowledge.
type IPEchoService struct {
	HostName string
	Host     *netsim.Host
}

// Install wires the IP-echo service onto a host (plain HTTP only).
func (e *IPEchoService) Install(host *netsim.Host) {
	e.Host = host
	host.HandleTCP(80, func(src netip.Addr, _ uint16, _ []byte) []byte {
		return (&Response{
			Status:  200,
			Headers: []Header{{"Content-Type", "text/plain"}},
			Body:    []byte(src.String()),
		}).Encode()
	})
}
