package websim

import (
	"bytes"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"

	"vpnscope/internal/dnssim"
	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
	"vpnscope/internal/tlssim"
)

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "www.example.com", "/index.html")
	raw := req.Encode()
	back, err := ParseRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != "GET" || back.Path != "/index.html" || back.Host() != "www.example.com" {
		t.Fatalf("back = %+v", back)
	}
	// Header order and casing are preserved exactly.
	if back.Headers[1].Name != "user-agent" {
		t.Errorf("header casing lost: %q", back.Headers[1].Name)
	}
	if !bytes.Equal(back.Encode(), raw) {
		t.Error("re-encode must be byte-identical")
	}
}

func TestRequestWithBody(t *testing.T) {
	req := &Request{Method: "POST", Path: "/submit", Headers: []Header{{"Host", "x.test"}}, Body: []byte("a=1&b=2")}
	back, err := ParseRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Body) != "a=1&b=2" {
		t.Fatalf("body = %q", back.Body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{Status: 200, Headers: []Header{{"Content-Type", "text/html"}}, Body: []byte("<html></html>")}
	back, err := ParseResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Status != 200 || string(back.Body) != "<html></html>" {
		t.Fatalf("back = %+v", back)
	}
	if ct, ok := back.Header("content-type"); !ok || ct != "text/html" {
		t.Error("case-insensitive header lookup failed")
	}
}

func TestParseErrors(t *testing.T) {
	for _, raw := range []string{"", "garbage", "GET /\r\n\r\n", "GET / HTTP/1.1\r\nNoColonHeader\r\n\r\n"} {
		if _, err := ParseRequest([]byte(raw)); err == nil {
			t.Errorf("ParseRequest(%q) should fail", raw)
		}
	}
	if _, err := ParseResponse([]byte("HTTP/1.1 abc OK\r\n\r\n")); err == nil {
		t.Error("bad status must fail")
	}
}

func TestRedirectAndForbiddenHelpers(t *testing.T) {
	r := Redirect("http://dest.test/x")
	if r.Status != 302 {
		t.Errorf("status = %d", r.Status)
	}
	if loc, _ := r.Header("Location"); loc != "http://dest.test/x" {
		t.Errorf("location = %q", loc)
	}
	if Forbidden().Status != 403 || len(Forbidden().Body) != 0 {
		t.Error("Forbidden should be an empty 403")
	}
}

func TestRegenerateHeadersDetectableButEquivalent(t *testing.T) {
	req := NewRequest("GET", "site.test", "/")
	orig := req.Encode()
	regen := RegenerateHeaders(orig)
	if bytes.Equal(orig, regen) {
		t.Fatal("regeneration must be observable")
	}
	back, err := ParseRequest(regen)
	if err != nil {
		t.Fatal(err)
	}
	// Semantics preserved: same header set (case-insensitive), same
	// values, no additions.
	if len(back.Headers) != len(req.Headers) {
		t.Fatalf("header count changed: %d -> %d", len(req.Headers), len(back.Headers))
	}
	for _, h := range req.Headers {
		if v, ok := back.Header(h.Name); !ok || v != h.Value {
			t.Errorf("header %q lost or changed: %q", h.Name, v)
		}
	}
	// Canonicalized names are Title-Case.
	if _, ok := back.Header("User-Agent"); !ok {
		t.Error("user-agent not found after regeneration")
	}
	for _, h := range back.Headers {
		if h.Name != canonicalHeaderName(h.Name) {
			t.Errorf("header %q not canonical", h.Name)
		}
	}
	// Non-HTTP bytes pass through.
	if got := RegenerateHeaders([]byte("binary\x00junk")); string(got) != "binary\x00junk" {
		t.Error("non-HTTP payloads must pass through")
	}
}

func TestCanonicalHeaderName(t *testing.T) {
	cases := map[string]string{
		"user-agent":       "User-Agent",
		"ACCEPT":           "Accept",
		"x-vpnscope-canary": "X-Vpnscope-Canary",
		"host":             "Host",
	}
	for in, want := range cases {
		if got := canonicalHeaderName(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestInjectOverlay(t *testing.T) {
	resp := &Response{
		Status:  200,
		Headers: []Header{{"Content-Type", "text/html"}},
		Body:    []byte("<html><body><p>page</p></body></html>"),
	}
	out := InjectOverlay(resp.Encode(), "seed4-me.example")
	back, err := ParseResponse(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(back.Body), "cdn.seed4-me.example/overlay.js") {
		t.Error("injected script missing")
	}
	if !strings.Contains(string(back.Body), "upgrade-overlay") {
		t.Error("overlay div missing")
	}
	// Injection goes before </body>.
	if strings.Index(string(back.Body), "overlay.js") > strings.Index(string(back.Body), "</body>") {
		t.Error("injection must precede </body>")
	}
	// Non-HTML untouched.
	js := &Response{Status: 200, Headers: []Header{{"Content-Type", "application/javascript"}}, Body: []byte("x")}
	if !bytes.Equal(InjectOverlay(js.Encode(), "p.example"), js.Encode()) {
		t.Error("non-HTML must pass through")
	}
	// Non-200 untouched.
	nf := &Response{Status: 404, Headers: []Header{{"Content-Type", "text/html"}}}
	if !bytes.Equal(InjectOverlay(nf.Encode(), "p.example"), nf.Encode()) {
		t.Error("non-200 must pass through")
	}
}

func TestCensorPolicies(t *testing.T) {
	for _, c := range []geo.Country{"TR", "KR", "RU", "NL", "TH"} {
		if PolicyFor(c) == nil {
			t.Errorf("no policy for %s", c)
		}
	}
	if PolicyFor("US") != nil {
		t.Error("US must not have a policy")
	}
	ru := PolicyFor("RU")
	porn := &Site{HostName: "adult-video.example", Category: CatPorn}
	news := &Site{HostName: "daily-news.example", Category: CatNews}
	if !ru.Blocks(porn) || ru.Blocks(news) {
		t.Error("RU category blocking wrong")
	}
	if !ru.Blocks(&Site{HostName: "jw-org.example", Category: CatUtility}) {
		t.Error("RU must block jw-org.example")
	}
	tr := PolicyFor("TR")
	if !tr.Blocks(&Site{HostName: "wikipedia.example", Category: CatUtility}) {
		t.Error("TR must block wikipedia.example")
	}
	// Destination is stable per ISP and drawn from the table.
	d1 := ru.DestinationFor("TTK Backbone")
	d2 := ru.DestinationFor("TTK Backbone")
	if d1 != d2 {
		t.Error("destination must be stable")
	}
	found := false
	for _, d := range ru.Destinations {
		if d == d1 {
			found = true
		}
	}
	if !found {
		t.Errorf("destination %q not in policy table", d1)
	}
	// Apply returns a 302 to the destination.
	resp, blocked := ru.Apply("TTK Backbone", "adult-video.example", func(h string) *Site {
		if h == "adult-video.example" {
			return porn
		}
		return nil
	})
	if !blocked || resp.Status != 302 {
		t.Fatalf("apply = %+v, %v", resp, blocked)
	}
	if loc, _ := resp.Header("Location"); loc != d1 {
		t.Errorf("location = %q, want %q", loc, d1)
	}
	// Unknown hosts never blocked.
	if _, blocked := ru.Apply("x", "unknown.example", func(string) *Site { return nil }); blocked {
		t.Error("unknown host blocked")
	}
	// Nil policy blocks nothing.
	if _, blocked := (*CensorPolicy)(nil).Apply("x", "adult-video.example", func(string) *Site { return porn }); blocked {
		t.Error("nil policy blocked")
	}
}

// buildTestWeb assembles a small web world for client tests.
func buildTestWeb(t testing.TB) (*netsim.Network, *Web, *dnssim.Directory, *Client) {
	t.Helper()
	n := netsim.New(5)
	dir := dnssim.NewDirectory()
	ca := tlssim.NewCA("SimTrust Root", 1)
	web, err := BuildWeb(n, dir, ca, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	// A public resolver.
	city, _ := geo.CityByName("New York")
	resolverHost := netsim.NewHost("dns:public", city, netip.MustParseAddr("8.8.8.8"))
	if err := n.AddHost(resolverHost); err != nil {
		t.Fatal(err)
	}
	res := &dnssim.Resolver{Name: "public", Addr: resolverHost.Addr, Dir: dir}
	resolverHost.HandleUDP(53, res.Handler())
	// The client machine.
	chi, _ := geo.CityByName("Chicago")
	clientHost := netsim.NewHost("client", chi, netip.MustParseAddr("203.0.113.10"))
	clientHost.Addr6 = netip.MustParseAddr("2001:db8:c::10")
	if err := n.AddHost(clientHost); err != nil {
		t.Fatal(err)
	}
	stack := netsim.NewStack(n, clientHost)
	stack.SetResolvers(resolverHost.Addr)
	return n, web, dir, &Client{Stack: stack}
}

func TestBuildWebShape(t *testing.T) {
	_, web, dir, _ := buildTestWeb(t)
	if len(web.DOMSites) != 55 {
		t.Errorf("DOM sites = %d, want 55", len(web.DOMSites))
	}
	honeys := 0
	for _, s := range web.DOMSites {
		if s.Category == CatHoneysite {
			honeys++
		}
		if !s.NoHTTPSUpgrade {
			t.Errorf("DOM site %s upgrades to HTTPS", s.HostName)
		}
		if !dir.Exists(s.HostName) {
			t.Errorf("site %s not in DNS", s.HostName)
		}
	}
	if honeys != 2 {
		t.Errorf("honeysites = %d, want 2", honeys)
	}
	if len(web.TLSSites) != 75 {
		t.Errorf("TLS sites = %d, want 55+20", len(web.TLSSites))
	}
	if web.SiteByName("daily-news.example") == nil {
		t.Error("SiteByName failed")
	}
	if !dir.Exists(EchoHostName) {
		t.Error("echo service not in DNS")
	}
}

func TestClientPlainHTTPFetch(t *testing.T) {
	_, _, _, client := buildTestWeb(t)
	chain, err := client.Get("http://daily-news.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Response.Status != 200 {
		t.Fatalf("chain = %+v", chain)
	}
	if !strings.Contains(string(chain[0].Response.Body), "daily-news.example") {
		t.Error("DOM content missing")
	}
}

func TestClientHTTPSWithCert(t *testing.T) {
	_, web, _, client := buildTestWeb(t)
	chain, err := client.Get("https://tls-host-000.example/")
	if err != nil {
		t.Fatal(err)
	}
	final := chain[len(chain)-1]
	if !final.TLS {
		t.Fatal("expected TLS result")
	}
	site := web.SiteByName("tls-host-000.example")
	if final.Cert.Fingerprint() != site.Cert.Fingerprint() {
		t.Error("served cert differs from ground truth")
	}
	ca := tlssim.NewCA("SimTrust Root", 1)
	_ = ca // pool verification exercised in the tlssim tests
}

func TestClientFollowsUpgradeRedirect(t *testing.T) {
	_, _, _, client := buildTestWeb(t)
	// TLS-extra hosts redirect HTTP -> HTTPS.
	chain, err := client.Get("http://tls-host-001.example/")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 {
		t.Fatalf("chain length = %d, want 2 (redirect+final)", len(chain))
	}
	if chain[0].Response.Status != 302 {
		t.Errorf("first hop = %d", chain[0].Response.Status)
	}
	if !chain[1].TLS || chain[1].Response.Status != 200 {
		t.Errorf("final hop = %+v", chain[1])
	}
}

func TestClientLoadPage(t *testing.T) {
	_, _, _, client := buildTestWeb(t)
	final, hosts, dom, err := client.LoadPage("http://honeysite-ads.example/")
	if err != nil {
		t.Fatal(err)
	}
	if final.Response.Status != 200 {
		t.Fatalf("status = %d", final.Response.Status)
	}
	if !strings.Contains(dom, "ad-unit") {
		t.Error("honeysite must carry ad markup")
	}
	// The ad host and the site's own resources appear in hosts.
	var sawAd, sawSelf bool
	for _, h := range hosts {
		if h == "adnet.example" {
			sawAd = true
		}
		if h == "honeysite-ads.example" {
			sawSelf = true
		}
	}
	if !sawAd || !sawSelf {
		t.Errorf("hosts = %v", hosts)
	}
}

func TestEchoService(t *testing.T) {
	_, _, _, client := buildTestWeb(t)
	addr, err := client.Resolve(EchoHostName, false)
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest("GET", EchoHostName, "/")
	raw, err := client.Stack.ExchangeTCP(addr, 80, req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ParseResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Body, req.Encode()) {
		t.Error("echo body must be the exact request bytes")
	}
}

func TestVPNHostileSites(t *testing.T) {
	_, web, _, client := buildTestWeb(t)
	vpnPrefix := netip.MustParsePrefix("203.0.113.0/24")
	web.SetVPNRanges([]netip.Prefix{vpnPrefix})
	// Our client is inside the "VPN" range; a hostile site 403s it.
	var hostile *Site
	for _, s := range web.TLSSites {
		if strings.HasPrefix(s.HostName, "tls-host-") {
			chain, err := client.Get("http://" + s.HostName + "/")
			if err != nil {
				continue
			}
			if chain[0].Response.Status == 403 {
				hostile = s
				break
			}
		}
	}
	if hostile == nil {
		t.Fatal("expected at least one VPN-hostile site in 20 extras")
	}
	// Clearing ranges restores access.
	web.SetVPNRanges(nil)
	chain, err := client.Get("http://" + hostile.HostName + "/")
	if err != nil {
		t.Fatal(err)
	}
	if chain[len(chain)-1].Response.Status != 200 {
		t.Errorf("status after unblock = %d", chain[len(chain)-1].Response.Status)
	}
}

func TestExtractScriptSrcs(t *testing.T) {
	dom := `<script src="http://a.test/x.js"></script><img src="http://b.test/i.png"><script src="http://c.test/y.js"></script>`
	got := ExtractScriptSrcs(dom)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestResolveRefRelativeAndAbsolute(t *testing.T) {
	got, err := resolveRef("http://a.test/x", "/y")
	if err != nil || got != "http://a.test/y" {
		t.Errorf("relative: %q, %v", got, err)
	}
	got, err = resolveRef("http://a.test/x", "https://b.test/z")
	if err != nil || got != "https://b.test/z" {
		t.Errorf("absolute: %q, %v", got, err)
	}
}

func TestRequestEncodeParsePreservesProperty(t *testing.T) {
	names := []string{"Host", "x-custom", "ACCEPT", "Via-Proxy"}
	if err := quick.Check(func(i uint8, val uint16) bool {
		h := Header{names[int(i)%len(names)], strings.TrimSpace(strings.Repeat("v", int(val%20)+1))}
		req := &Request{Method: "GET", Path: "/p", Headers: []Header{h}}
		back, err := ParseRequest(req.Encode())
		if err != nil {
			return false
		}
		return len(back.Headers) == 1 && back.Headers[0] == h
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClientGet(b *testing.B) {
	_, _, _, client := buildTestWeb(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Get("http://daily-news.example/"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegenerateHeaders(b *testing.B) {
	raw := NewRequest("GET", "site.test", "/").Encode()
	for i := 0; i < b.N; i++ {
		_ = RegenerateHeaders(raw)
	}
}

func TestHTTPParsersArbitraryBytesNeverPanic(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		_, _ = ParseRequest(data)
		_, _ = ParseResponse(data)
		_ = RegenerateHeaders(data)
		_ = InjectOverlay(data, "p.example")
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
