// Package websim is the simulated web: an order-preserving HTTP/1.1
// message codec, web sites (including the paper's honeysites and a
// header-echo service), country-level censorship policies, and the
// header-regeneration behavior of transparent proxies.
//
// Header order and spelling are preserved byte-for-byte by the codec
// because the paper's proxy-detection test (§6.2.1) works precisely by
// observing that a transparent proxy parses and regenerates headers —
// changing their order, casing, or spacing — between client and server.
package websim

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Header is one HTTP header line, preserved verbatim.
type Header struct {
	Name  string
	Value string
}

// Request is an HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Headers []Header
	Body    []byte
}

// Response is an HTTP/1.1 response.
type Response struct {
	Status  int
	Reason  string
	Headers []Header
	Body    []byte
}

// Codec errors.
var (
	ErrMalformedRequest  = errors.New("websim: malformed request")
	ErrMalformedResponse = errors.New("websim: malformed response")
)

// Get returns the first header value with the given name
// (case-insensitive), and whether it was present.
func get(headers []Header, name string) (string, bool) {
	for _, h := range headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Header returns the first matching request header value.
func (r *Request) Header(name string) (string, bool) { return get(r.Headers, name) }

// Host returns the Host header.
func (r *Request) Host() string {
	v, _ := r.Header("Host")
	return v
}

// SetHeader replaces the first header with the given name or appends.
func (r *Request) SetHeader(name, value string) {
	for i := range r.Headers {
		if strings.EqualFold(r.Headers[i].Name, name) {
			r.Headers[i] = Header{name, value}
			return
		}
	}
	r.Headers = append(r.Headers, Header{name, value})
}

// Header returns the first matching response header value.
func (r *Response) Header(name string) (string, bool) { return get(r.Headers, name) }

// NewRequest builds a GET-style request with the standard client
// headers the measurement suite sends. The deliberate mixed ordering
// and casing act as a canary: any proxy that parses and regenerates the
// request will normalize them.
func NewRequest(method, host, path string) *Request {
	if path == "" {
		path = "/"
	}
	return &Request{
		Method: method,
		Path:   path,
		Headers: []Header{
			{"Host", host},
			{"user-agent", "vpnscope/1.0 (measurement; +https://vpnscope.test)"},
			{"Accept", "*/*"},
			{"X-VPNScope-Canary", "qJx7-canary-ordered"},
			{"accept-language", "en-US,en;q=0.9"},
		},
	}
}

// AppendEncode serializes the request onto dst and returns the
// extended slice. The wire bytes are identical to what the historical
// fmt-based encoder produced; hot callers reuse dst as scratch.
func (r *Request) AppendEncode(dst []byte) []byte {
	dst = append(dst, r.Method...)
	dst = append(dst, ' ')
	dst = append(dst, r.Path...)
	dst = append(dst, " HTTP/1.1\r\n"...)
	for _, h := range r.Headers {
		dst = append(dst, h.Name...)
		dst = append(dst, ": "...)
		dst = append(dst, h.Value...)
		dst = append(dst, "\r\n"...)
	}
	if len(r.Body) > 0 {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, int64(len(r.Body)), 10)
		dst = append(dst, "\r\n"...)
	}
	dst = append(dst, "\r\n"...)
	return append(dst, r.Body...)
}

// Encode serializes the request into a fresh buffer.
func (r *Request) Encode() []byte { return r.AppendEncode(nil) }

// ParseRequest decodes a request produced by Encode (or by a proxy's
// regeneration of one).
func ParseRequest(data []byte) (*Request, error) {
	req := &Request{}
	if err := ParseRequestInto(req, data); err != nil {
		return nil, err
	}
	return req, nil
}

// ParseRequestInto decodes data into req, reusing req.Headers capacity.
// Acceptance, rejection, and error text match ParseRequest exactly;
// servers that field one request at a time use it to keep a single
// Request scratch alive across their whole lifetime.
func ParseRequestInto(req *Request, data []byte) error {
	head, body, err := splitHead(data)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	line0, rest := cutLine(head)
	method, after, _ := strings.Cut(line0, " ")
	path, proto, ok := strings.Cut(after, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/1.") {
		return fmt.Errorf("%w: bad request line %q", ErrMalformedRequest, line0)
	}
	hs, err := parseHeadersInto(req.Headers[:0], rest)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	*req = Request{Method: method, Path: path, Headers: hs, Body: body}
	return nil
}

// AppendEncode serializes the response onto dst and returns the
// extended slice; see Request.AppendEncode.
func (r *Response) AppendEncode(dst []byte) []byte {
	reason := r.Reason
	if reason == "" {
		reason = defaultReason(r.Status)
	}
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(r.Status), 10)
	dst = append(dst, ' ')
	dst = append(dst, reason...)
	dst = append(dst, "\r\n"...)
	for _, h := range r.Headers {
		dst = append(dst, h.Name...)
		dst = append(dst, ": "...)
		dst = append(dst, h.Value...)
		dst = append(dst, "\r\n"...)
	}
	dst = append(dst, "Content-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(r.Body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	return append(dst, r.Body...)
}

// Encode serializes the response into a fresh buffer.
func (r *Response) Encode() []byte { return r.AppendEncode(nil) }

// ParseResponse decodes a response.
func ParseResponse(data []byte) (*Response, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	line0, rest := cutLine(head)
	proto, after, ok := strings.Cut(line0, " ")
	if !ok || !strings.HasPrefix(proto, "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformedResponse, line0)
	}
	code, reason, _ := strings.Cut(after, " ")
	status, err := strconv.Atoi(code)
	if err != nil {
		return nil, fmt.Errorf("%w: bad status %q", ErrMalformedResponse, code)
	}
	resp := &Response{Status: status, Reason: reason, Body: body}
	hs, err := parseHeaders(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	resp.Headers = hs
	return resp, nil
}

func splitHead(data []byte) (string, []byte, error) {
	head, body, ok := bytes.Cut(data, []byte("\r\n\r\n"))
	if !ok {
		return "", nil, errors.New("no header terminator")
	}
	return string(head), body, nil
}

// cutLine splits off the first \r\n-terminated line of head. The
// returned substrings alias head, so parsing a whole header block costs
// exactly one string allocation (made by splitHead).
func cutLine(head string) (line, rest string) {
	if i := strings.Index(head, "\r\n"); i >= 0 {
		return head[:i], head[i+2:]
	}
	return head, ""
}

func parseHeaders(head string) ([]Header, error) {
	return parseHeadersInto(nil, head)
}

// parseHeadersInto appends parsed headers onto dst (pre-sizing it when
// it has no capacity to reuse) and returns nil, not an empty slice, for
// a headerless message — the historical parseHeaders contract.
func parseHeadersInto(dst []Header, head string) ([]Header, error) {
	if cap(dst) == 0 {
		dst = make([]Header, 0, strings.Count(head, "\r\n")+1)
	}
	out := dst
	for len(head) > 0 {
		var line string
		line, head = cutLine(head)
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("bad header line %q", line)
		}
		out = append(out, Header{Name: name, Value: strings.TrimSpace(value)})
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// RequestHost extracts the Host header from a wire-encoded request
// without materializing the Request. ok mirrors ParseRequest returning
// nil error — same header-terminator, request-line, and header-line
// checks — and host mirrors Request.Host (empty when the header is
// absent), so gates that only need the host (the censorship filter
// inspects every forwarded TCP payload) keep their exact semantics
// while skipping the full decode.
func RequestHost(data []byte) (host string, ok bool) {
	head, _, ok := bytes.Cut(data, []byte("\r\n\r\n"))
	if !ok {
		return "", false
	}
	// Request line: "<method> <path> HTTP/1.x".
	line, rest := cutLineBytes(head)
	i := bytes.IndexByte(line, ' ')
	if i < 0 {
		return "", false
	}
	j := bytes.IndexByte(line[i+1:], ' ')
	if j < 0 || !bytes.HasPrefix(line[i+1+j+1:], []byte("HTTP/1.")) {
		return "", false
	}
	found := false
	for len(rest) > 0 {
		line, rest = cutLineBytes(rest)
		if len(line) == 0 {
			continue
		}
		k := bytes.IndexByte(line, ':')
		if k < 0 {
			// ParseRequest fails the whole request on any bad header
			// line, even after Host was seen.
			return "", false
		}
		if !found && len(line[:k]) == len("Host") && asciiEqualFold(line[:k], "Host") {
			host, found = string(bytes.TrimSpace(line[k+1:])), true
		}
	}
	return host, true
}

// cutLineBytes is cutLine over the wire bytes.
func cutLineBytes(head []byte) (line, rest []byte) {
	if i := bytes.Index(head, []byte("\r\n")); i >= 0 {
		return head[:i], head[i+2:]
	}
	return head, nil
}

// asciiEqualFold is strings.EqualFold for a byte slice vs an ASCII
// string of the same length.
func asciiEqualFold(b []byte, s string) bool {
	for i := 0; i < len(s); i++ {
		c, d := b[i], s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if 'A' <= d && d <= 'Z' {
			d += 'a' - 'A'
		}
		if c != d {
			return false
		}
	}
	return true
}

func defaultReason(status int) string {
	switch status {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 502:
		return "Bad Gateway"
	default:
		return "Status"
	}
}

// Redirect builds a 302 response to location.
func Redirect(location string) *Response {
	return &Response{
		Status:  302,
		Headers: []Header{{"Location", location}},
		Body:    redirectBody,
	}
}

// redirectBody is shared by every Redirect response; never mutated.
var redirectBody = []byte("<html><body>302 Found</body></html>")

// Forbidden builds the empty-403 blocking response some censors use
// (§6.1.2).
func Forbidden() *Response {
	return &Response{Status: 403}
}
