// Package websim is the simulated web: an order-preserving HTTP/1.1
// message codec, web sites (including the paper's honeysites and a
// header-echo service), country-level censorship policies, and the
// header-regeneration behavior of transparent proxies.
//
// Header order and spelling are preserved byte-for-byte by the codec
// because the paper's proxy-detection test (§6.2.1) works precisely by
// observing that a transparent proxy parses and regenerates headers —
// changing their order, casing, or spacing — between client and server.
package websim

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Header is one HTTP header line, preserved verbatim.
type Header struct {
	Name  string
	Value string
}

// Request is an HTTP/1.1 request.
type Request struct {
	Method  string
	Path    string
	Headers []Header
	Body    []byte
}

// Response is an HTTP/1.1 response.
type Response struct {
	Status  int
	Reason  string
	Headers []Header
	Body    []byte
}

// Codec errors.
var (
	ErrMalformedRequest  = errors.New("websim: malformed request")
	ErrMalformedResponse = errors.New("websim: malformed response")
)

// Get returns the first header value with the given name
// (case-insensitive), and whether it was present.
func get(headers []Header, name string) (string, bool) {
	for _, h := range headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Header returns the first matching request header value.
func (r *Request) Header(name string) (string, bool) { return get(r.Headers, name) }

// Host returns the Host header.
func (r *Request) Host() string {
	v, _ := r.Header("Host")
	return v
}

// SetHeader replaces the first header with the given name or appends.
func (r *Request) SetHeader(name, value string) {
	for i := range r.Headers {
		if strings.EqualFold(r.Headers[i].Name, name) {
			r.Headers[i] = Header{name, value}
			return
		}
	}
	r.Headers = append(r.Headers, Header{name, value})
}

// Header returns the first matching response header value.
func (r *Response) Header(name string) (string, bool) { return get(r.Headers, name) }

// NewRequest builds a GET-style request with the standard client
// headers the measurement suite sends. The deliberate mixed ordering
// and casing act as a canary: any proxy that parses and regenerates the
// request will normalize them.
func NewRequest(method, host, path string) *Request {
	if path == "" {
		path = "/"
	}
	return &Request{
		Method: method,
		Path:   path,
		Headers: []Header{
			{"Host", host},
			{"user-agent", "vpnscope/1.0 (measurement; +https://vpnscope.test)"},
			{"Accept", "*/*"},
			{"X-VPNScope-Canary", "qJx7-canary-ordered"},
			{"accept-language", "en-US,en;q=0.9"},
		},
	}
}

// Encode serializes the request.
func (r *Request) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.Path)
	for _, h := range r.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	if len(r.Body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	}
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// ParseRequest decodes a request produced by Encode (or by a proxy's
// regeneration of one).
func ParseRequest(data []byte) (*Request, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformedRequest, lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Body: body}
	hs, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedRequest, err)
	}
	req.Headers = hs
	return req, nil
}

// Encode serializes the response.
func (r *Response) Encode() []byte {
	var b bytes.Buffer
	reason := r.Reason
	if reason == "" {
		reason = defaultReason(r.Status)
	}
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, reason)
	for _, h := range r.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(r.Body))
	b.WriteString("\r\n")
	b.Write(r.Body)
	return b.Bytes()
}

// ParseResponse decodes a response.
func ParseResponse(data []byte) (*Response, error) {
	head, body, err := splitHead(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformedResponse, lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status %q", ErrMalformedResponse, parts[1])
	}
	resp := &Response{Status: status, Body: body}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	hs, err := parseHeaders(lines[1:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformedResponse, err)
	}
	resp.Headers = hs
	return resp, nil
}

func splitHead(data []byte) (string, []byte, error) {
	head, body, ok := bytes.Cut(data, []byte("\r\n\r\n"))
	if !ok {
		return "", nil, errors.New("no header terminator")
	}
	return string(head), body, nil
}

func parseHeaders(lines []string) ([]Header, error) {
	var out []Header
	for _, line := range lines {
		if line == "" {
			continue
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("bad header line %q", line)
		}
		out = append(out, Header{Name: name, Value: strings.TrimSpace(value)})
	}
	return out, nil
}

func defaultReason(status int) string {
	switch status {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 403:
		return "Forbidden"
	case 404:
		return "Not Found"
	case 502:
		return "Bad Gateway"
	default:
		return "Status"
	}
}

// Redirect builds a 302 response to location.
func Redirect(location string) *Response {
	return &Response{
		Status:  302,
		Headers: []Header{{"Location", location}},
		Body:    []byte("<html><body>302 Found</body></html>"),
	}
}

// Forbidden builds the empty-403 blocking response some censors use
// (§6.1.2).
func Forbidden() *Response {
	return &Response{Status: 403}
}
