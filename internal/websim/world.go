package websim

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"vpnscope/internal/dnssim"
	"vpnscope/internal/geo"
	"vpnscope/internal/netsim"
	"vpnscope/internal/simrand"
	"vpnscope/internal/tlssim"
)

// Web is the assembled simulated web the measurement suite works
// against: the 55 DOM-test sites (§5.3.1) including two honeysites, the
// ~150 additional TLS-test hosts, and the header-echo service.
type Web struct {
	Sites       []*Site // every site, DOM-test and TLS-extra
	DOMSites    []*Site // the 55 sites the DOM-collection test loads
	TLSSites    []*Site // the 200+ hosts the TLS test probes
	Echo        *EchoService
	IPEcho      *IPEchoService
	WebRTCProbe *WebRTCProbeService

	mu        sync.RWMutex
	byName    map[string]*Site
	vpnRanges []netip.Prefix
}

// SiteByName resolves a hostname to its simulated site (nil if unknown).
func (w *Web) SiteByName(name string) *Site {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.byName[name]
}

// SetVPNRanges installs the address ranges that VPN-hostile sites
// blanket-block with HTTP 403 (the §6.1.2 behavior of services that
// discriminate against known VPN egress blocks).
func (w *Web) SetVPNRanges(prefixes []netip.Prefix) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.vpnRanges = append([]netip.Prefix(nil), prefixes...)
}

func (w *Web) isVPNAddr(a netip.Addr) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for _, p := range w.vpnRanges {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// domSiteSpecs is the 55-site corpus (53 content sites + 2 honeysites)
// mirroring the paper's category mix: sites that do not upgrade to
// HTTPS, spanning sensitive categories.
var domSiteSpecs = []struct {
	host string
	cat  Category
}{
	{"honeysite-ads.example", CatHoneysite},
	{"honeysite-static.example", CatHoneysite},
	{"daily-news.example", CatNews},
	{"world-report.example", CatNews},
	{"metro-times.example", CatNews},
	{"evening-post.example", CatNews},
	{"wire-briefs.example", CatNews},
	{"free-press.example", CatNews},
	{"city-herald.example", CatNews},
	{"opposition-voice.example", CatPolitics},
	{"policy-watch.example", CatPolitics},
	{"election-monitor.example", CatPolitics},
	{"rights-forum.example", CatPolitics},
	{"dissident-blog.example", CatPolitics},
	{"protest-net.example", CatPolitics},
	{"adult-video.example", CatPorn},
	{"cam-site.example", CatPorn},
	{"adult-tube.example", CatPorn},
	{"red-lounge.example", CatPorn},
	{"late-night.example", CatPorn},
	{"ministry-info.example", CatGovernment},
	{"city-services.example", CatGovernment},
	{"tax-portal.example", CatGovernment},
	{"visa-office.example", CatGovernment},
	{"public-records.example", CatGovernment},
	{"defense-systems.example", CatDefense},
	{"aero-contractor.example", CatDefense},
	{"naval-works.example", CatDefense},
	{"radar-tech.example", CatDefense},
	{"torrent-bay.example", CatFileShare},
	{"seed-box.example", CatFileShare},
	{"file-locker.example", CatFileShare},
	{"share-hub.example", CatFileShare},
	{"magnet-index.example", CatFileShare},
	{"wikipedia.example", CatUtility},
	{"jw-org.example", CatUtility},
	{"linkedin.example", CatSocial},
	{"buddy-net.example", CatSocial},
	{"photo-wall.example", CatSocial},
	{"micro-blog.example", CatSocial},
	{"chat-rooms.example", CatSocial},
	{"mega-mart.example", CatShopping},
	{"deal-finder.example", CatShopping},
	{"auction-house.example", CatShopping},
	{"coupon-clip.example", CatShopping},
	{"price-compare.example", CatShopping},
	{"weather-now.example", CatUtility},
	{"unit-convert.example", CatUtility},
	{"time-zones.example", CatUtility},
	{"dictionary.example", CatUtility},
	{"recipe-box.example", CatUtility},
	{"map-quest.example", CatUtility},
	{"sports-wire.example", CatNews},
	{"finance-daily.example", CatNews},
	{"tech-review.example", CatNews},
}

// hostingBlocks are the content-hosting networks sites live in.
var hostingBlocks = []struct {
	block netsim.Block
	city  string
}{
	{netsim.Block{Prefix: netip.MustParsePrefix("23.32.0.0/20"), ASN: 20940, Org: "EdgeHost CDN", Country: "US"}, "New York"},
	{netsim.Block{Prefix: netip.MustParsePrefix("146.75.0.0/20"), ASN: 54113, Org: "FastServe CDN", Country: "DE"}, "Frankfurt"},
	{netsim.Block{Prefix: netip.MustParsePrefix("151.101.0.0/20"), ASN: 54113, Org: "FastServe CDN", Country: "US"}, "San Jose"},
	{netsim.Block{Prefix: netip.MustParsePrefix("103.244.50.0/24"), ASN: 133752, Org: "AsiaEdge Hosting", Country: "SG"}, "Singapore"},
}

// EchoHostName, IPEchoHostName, and WebRTCProbeHostName are where the
// header-echo, what-is-my-IP, and WebRTC-leak services live.
const (
	EchoHostName        = "echo.vpnscope.test"
	IPEchoHostName      = "whoami.vpnscope.test"
	WebRTCProbeHostName = "rtcprobe.vpnscope.test"
)

// BuildWeb constructs the whole simulated web on the network, registers
// every hostname in the DNS directory, and issues certificates from ca.
// extraTLS is the number of additional TLS-only probe hosts (the paper
// used "more than 150"); a handful of them are VPN-hostile.
func BuildWeb(n *netsim.Network, dir *dnssim.Directory, ca *tlssim.CA, seed uint64, extraTLS int) (*Web, error) {
	rng := simrand.New(seed).Fork("websim")
	w := &Web{byName: make(map[string]*Site)}

	allocators := make([]*netsim.Allocator, len(hostingBlocks))
	cities := make([]geo.City, len(hostingBlocks))
	for i, hb := range hostingBlocks {
		allocators[i] = netsim.NewAllocator(hb.block)
		city, ok := geo.CityByName(hb.city)
		if !ok {
			return nil, fmt.Errorf("websim: unknown hosting city %q", hb.city)
		}
		cities[i] = city
	}

	install := func(site *Site, hostIdx int) error {
		alloc, city := allocators[hostIdx], cities[hostIdx]
		addr, err := alloc.Next()
		if err != nil {
			return err
		}
		host := netsim.NewHost("web:"+site.HostName, city, addr)
		host.Block = alloc.Block()
		// Give every site an IPv6 address so IPv6-leak probes have
		// real destinations.
		host.Addr6 = v6For(addr)
		if err := n.AddHost(host); err != nil {
			return err
		}
		site.Cert = ca.Issue(site.HostName)
		site.Install(host)
		w.mu.Lock()
		w.byName[site.HostName] = site
		w.mu.Unlock()
		w.Sites = append(w.Sites, site)
		dir.Register(site.HostName, addr, host.Addr6)
		return nil
	}

	// DOM-test corpus: plain-HTTP sites with two subresources each.
	for i, spec := range domSiteSpecs {
		site := &Site{
			HostName:       spec.host,
			Category:       spec.cat,
			NoHTTPSUpgrade: true,
			AdSlots:        spec.host == "honeysite-ads.example",
			Resources: []string{
				fmt.Sprintf("http://%s/static/app.js", spec.host),
				fmt.Sprintf("http://%s/static/base.js", spec.host),
			},
		}
		if err := install(site, i%len(allocators)); err != nil {
			return nil, err
		}
		w.DOMSites = append(w.DOMSites, site)
		w.TLSSites = append(w.TLSSites, site)
	}

	// Extra TLS-test hosts; roughly 5% are VPN-hostile (they 403 known
	// VPN ranges over both HTTP and HTTPS).
	for i := 0; i < extraTLS; i++ {
		site := &Site{
			HostName: fmt.Sprintf("tls-host-%03d.example", i),
			Category: CatUtility,
		}
		hostile := rng.Bool(0.05)
		if err := install(site, rng.Intn(len(allocators))); err != nil {
			return nil, err
		}
		if hostile {
			w.installHostility(site)
		}
		w.TLSSites = append(w.TLSSites, site)
	}

	// Censorship block pages: every destination in the national
	// policies is a real, resolvable host serving a static notice (the
	// TTK page in Figure 6, warning.or.kr, etc.).
	if err := buildBlockPages(n, dir); err != nil {
		return nil, err
	}

	// Header-echo service.
	echoAddr := allocators[0].MustNext()
	echoHost := netsim.NewHost("web:"+EchoHostName, cities[0], echoAddr)
	echoHost.Block = allocators[0].Block()
	if err := n.AddHost(echoHost); err != nil {
		return nil, err
	}
	w.Echo = &EchoService{HostName: EchoHostName}
	w.Echo.Install(echoHost)
	dir.Register(EchoHostName, echoAddr)

	// What-is-my-IP service.
	ipAddr := allocators[0].MustNext()
	ipHost := netsim.NewHost("web:"+IPEchoHostName, cities[0], ipAddr)
	ipHost.Block = allocators[0].Block()
	if err := n.AddHost(ipHost); err != nil {
		return nil, err
	}
	w.IPEcho = &IPEchoService{HostName: IPEchoHostName}
	w.IPEcho.Install(ipHost)
	dir.Register(IPEchoHostName, ipAddr)

	// WebRTC leak-test page.
	rtcAddr := allocators[0].MustNext()
	rtcHost := netsim.NewHost("web:"+WebRTCProbeHostName, cities[0], rtcAddr)
	rtcHost.Block = allocators[0].Block()
	if err := n.AddHost(rtcHost); err != nil {
		return nil, err
	}
	w.WebRTCProbe = &WebRTCProbeService{HostName: WebRTCProbeHostName}
	w.WebRTCProbe.Install(rtcHost)
	dir.Register(WebRTCProbeHostName, rtcAddr)

	return w, nil
}

// forbiddenWire is the encoded bare-403 every hostile handler returns;
// never mutated (netsim copies handler payloads before reuse).
var forbiddenWire = Forbidden().Encode()

// installHostility rewraps a site's handlers so requests from known VPN
// ranges receive a bare 403 (HTTP) or a certificate-then-403 (HTTPS).
func (w *Web) installHostility(site *Site) {
	host := site.Host
	host.HandleTCP(80, func(src netip.Addr, _ uint16, payload []byte) []byte {
		if w.isVPNAddr(src) {
			return forbiddenWire
		}
		if err := ParseRequestInto(&site.req, payload); err != nil {
			return (&Response{Status: 400}).Encode()
		}
		return site.upgradeRedirect(site.req.Path)
	})
	host.HandleTCP(443, func(src netip.Addr, _ uint16, payload []byte) []byte {
		inner, err := tlssim.ClientHelloInner(payload)
		if err != nil {
			return nil
		}
		if w.isVPNAddr(src) {
			return site.tlsFrame(forbiddenWire)
		}
		if err := ParseRequestInto(&site.req, inner); err != nil {
			return site.tlsFrame((&Response{Status: 400}).Encode())
		}
		return site.tlsFrame(site.encode(site.serve(&site.req)))
	})
}

// blockPageBlock hosts every national block page.
var blockPageBlock = netsim.Block{
	Prefix: netip.MustParsePrefix("185.40.16.0/22"), ASN: 8359, Org: "National ISP Sim",
}

// buildBlockPages creates a host for every censorship redirect
// destination across all national policies, serving a static notice.
func buildBlockPages(n *netsim.Network, dir *dnssim.Directory) error {
	alloc := netsim.NewAllocator(blockPageBlock)
	seen := map[string]bool{}
	for _, country := range []geo.Country{"TR", "KR", "RU", "NL", "TH"} {
		policy := PolicyFor(country)
		if policy == nil {
			continue
		}
		cities := geo.CitiesIn(country)
		if len(cities) == 0 {
			continue
		}
		city := cities[0]
		for _, dest := range policy.Destinations {
			hostname, scheme := hostOfURL(dest)
			if hostname == "" || seen[hostname] {
				continue
			}
			seen[hostname] = true
			var addr netip.Addr
			if ip, err := netip.ParseAddr(hostname); err == nil {
				addr = ip // IP-literal destination: host lives at that address
			} else {
				var aerr error
				addr, aerr = alloc.Next()
				if aerr != nil {
					return aerr
				}
				dir.Register(hostname, addr)
			}
			host := netsim.NewHost("blockpage:"+hostname, city, addr)
			host.Block = blockPageBlock
			if err := n.AddHost(host); err != nil {
				return err
			}
			notice := &Response{
				Status:  200,
				Headers: []Header{{"Content-Type", "text/html"}},
				Body:    []byte("<html><body><h1>Access to this resource is restricted by national regulation.</h1></body></html>"),
			}
			// The notice never changes, so encode it (and its TLS
			// framing) once at world build instead of per request.
			noticeWire := notice.Encode()
			host.HandleTCP(80, func(_ netip.Addr, _ uint16, _ []byte) []byte { return noticeWire })
			if scheme == "https" {
				// The NL ziggo.nl destination is HTTPS; serve a
				// self-signed-style cert (clients don't validate block
				// pages in the study).
				ca := tlssim.NewCA(hostname+" self-signed", 1)
				cert := ca.Issue(hostname)
				framedNotice, ferr := tlssim.EncodeServerHello(cert, noticeWire)
				if ferr != nil {
					return ferr
				}
				host.HandleTCP(443, func(_ netip.Addr, _ uint16, payload []byte) []byte {
					if _, err := tlssim.ClientHelloInner(payload); err != nil {
						return nil
					}
					return framedNotice
				})
			}
		}
	}
	return nil
}

// hostOfURL extracts hostname and scheme from a policy destination URL.
func hostOfURL(raw string) (host, scheme string) {
	rest := raw
	if s, r, ok := strings.Cut(raw, "://"); ok {
		scheme, rest = s, r
	}
	host, _, _ = strings.Cut(rest, "/")
	return host, scheme
}

// v6For derives a deterministic IPv6 address from an IPv4 one, placing
// every web host in a documentation prefix.
func v6For(a netip.Addr) netip.Addr {
	v4 := a.As4()
	return netip.AddrFrom16([16]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0x64, 0, 0,
		0, 0, 0, 0, v4[0], v4[1], v4[2], v4[3]})
}
