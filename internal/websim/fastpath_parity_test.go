package websim

import (
	"errors"
	"fmt"
	"net/netip"
	"net/url"
	"strings"
	"testing"
)

// The client's hot paths replace fmt/net-url/codec machinery with
// hand-rolled equivalents. These tests pin each one to the original,
// byte for byte, because the rendered strings land in result records
// and are part of the campaign's determinism contract.

func TestErrResolveViaMatchesFmt(t *testing.T) {
	c := &Client{}
	cause := errors.New("netsim: timeout: 10.0.0.1")
	for _, host := range []string{"api.example.com", "weird host\"", "ünïcode.example"} {
		for _, server := range []netip.Addr{
			netip.MustParseAddr("9.9.9.9"),
			netip.MustParseAddr("2001:db8::53"),
		} {
			want := fmt.Errorf("resolving %q via %v: %w", host, server, cause)
			got := c.errResolveVia(host, server, cause)
			if got.Error() != want.Error() {
				t.Errorf("errResolveVia(%q, %v) = %q, want %q", host, server, got, want)
			}
			if !errors.Is(got, cause) {
				t.Errorf("errResolveVia(%q, %v) does not unwrap to cause", host, server)
			}
		}
	}
	// Memoized: same key returns the identical error value.
	server := netip.MustParseAddr("9.9.9.9")
	if c.errResolveVia("h.example", server, cause) != c.errResolveVia("h.example", server, cause) {
		t.Error("errResolveVia did not memoize an identical key")
	}
}

func TestErrNXDomainMatchesFmt(t *testing.T) {
	c := &Client{}
	for _, tc := range []struct {
		host  string
		rcode int
	}{{"gone.example", 3}, {"srvfail.example", 2}, {"quo\"te.example", 3}} {
		want := fmt.Errorf("%w: %q (rcode %d)", ErrNXDomain, tc.host, tc.rcode)
		got := c.errNXDomain(tc.host, tc.rcode)
		if got.Error() != want.Error() {
			t.Errorf("errNXDomain(%q, %d) = %q, want %q", tc.host, tc.rcode, got, want)
		}
		if !errors.Is(got, ErrNXDomain) {
			t.Errorf("errNXDomain(%q, %d) does not unwrap to ErrNXDomain", tc.host, tc.rcode)
		}
	}
}

func TestErrWrapURLMatchesFmt(t *testing.T) {
	c := &Client{}
	cause := ErrEmptyResponse
	wantF := fmt.Errorf("fetching %q: %w", "http://a.example/x", cause)
	if got := c.errWrapURL(true, "http://a.example/x", cause); got.Error() != wantF.Error() {
		t.Errorf("errWrapURL(fetching) = %q, want %q", got, wantF)
	}
	wantR := fmt.Errorf("resolving %q: %w", "a.example", cause)
	if got := c.errWrapURL(false, "a.example", cause); got.Error() != wantR.Error() {
		t.Errorf("errWrapURL(resolving) = %q, want %q", got, wantR)
	}
	if !errors.Is(c.errWrapURL(true, "u", cause), ErrEmptyResponse) {
		t.Error("errWrapURL does not unwrap to its cause")
	}
}

func TestAppendGETMatchesRequestEncode(t *testing.T) {
	for _, tc := range []struct{ host, path string }{
		{"site.example", "/"},
		{"cdn.site.example", "/assets/app.js"},
		{"10.1.2.3", "/ip"},
	} {
		want := NewRequest("GET", tc.host, tc.path).Encode()
		got := appendGET(nil, tc.host, tc.path)
		if string(got) != string(want) {
			t.Errorf("appendGET(%q, %q) =\n%q\nwant\n%q", tc.host, tc.path, got, want)
		}
	}
}

func TestLooksLikeIPNeverMissesALiteral(t *testing.T) {
	for _, lit := range []string{
		"1.2.3.4", "255.255.255.255", "0.0.0.0",
		"::1", "2001:db8::1", "fe80::1%eth0", "::ffff:10.0.0.1",
	} {
		if _, err := netip.ParseAddr(lit); err != nil {
			t.Fatalf("test literal %q does not parse", lit)
		}
		if !looksLikeIP(lit) {
			t.Errorf("looksLikeIP(%q) = false for a valid address literal", lit)
		}
	}
	for _, host := range []string{"site.example", "a-b.example", "localhost", ""} {
		if looksLikeIP(host) {
			t.Errorf("looksLikeIP(%q) = true; hostname should skip ParseAddr", host)
		}
	}
}

func TestRequestHostMatchesParseRequest(t *testing.T) {
	cases := [][]byte{
		NewRequest("GET", "site.example", "/").Encode(),
		NewRequest("POST", "other.example", "/submit").Encode(),
		[]byte("GET / HTTP/1.1\r\n\r\n"),                                       // no Host at all
		[]byte("GET / HTTP/1.1\r\nHOST: caps.example\r\n\r\n"),                 // case-folded name
		[]byte("GET / HTTP/1.1\r\nHost:   padded.example  \r\n\r\n"),           // trimmed value
		[]byte("GET / HTTP/1.1\r\nHost: a.example\r\nHost: b.example\r\n\r\n"), // first wins
		[]byte("GET / HTTP/1.1\r\nHost: a.example\r\nbroken line\r\n\r\n"),     // bad header after Host
		[]byte("GET /nospace\r\nHost: a.example\r\n\r\n"),                      // bad request line
		[]byte("GET / SPDY/3\r\nHost: a.example\r\n\r\n"),                      // wrong protocol
		[]byte("no terminator"),
		[]byte("GET / HTTP/1.1\r\nHost : spaced-name.example\r\n\r\n"), // name with trailing space
	}
	for _, wire := range cases {
		wantHost, wantOK := "", false
		if req, err := ParseRequest(wire); err == nil {
			wantHost, wantOK = req.Host(), true
		}
		gotHost, gotOK := RequestHost(wire)
		if gotHost != wantHost || gotOK != wantOK {
			t.Errorf("RequestHost(%q) = (%q, %v), want (%q, %v)", wire, gotHost, gotOK, wantHost, wantOK)
		}
	}
}

func TestResolveRefFastPathMatchesNetURL(t *testing.T) {
	slow := func(base, ref string) (string, error) {
		b, err := url.Parse(base)
		if err != nil {
			return "", err
		}
		r, err := url.Parse(ref)
		if err != nil {
			return "", err
		}
		return b.ResolveReference(r).String(), nil
	}
	bases := []string{
		"http://site.example/",
		"https://site.example/deep/page",
		"http://site.example",
	}
	refs := []string{
		"http://other.example/landing",
		"https://cdn.example/a/b.js",
		"/",
		"/login",
		"/a/b/c",
		"/a:b",
		"relative/path",
		"../up",
		"/dot/./seg",
		"/trail/..",
		"/query?x=1",
		"//protocol-relative.example/x",
		"http://abs.example/with/../dots",
	}
	for _, base := range bases {
		for _, ref := range refs {
			want, werr := slow(base, ref)
			got, gerr := resolveRef(base, ref)
			if (werr == nil) != (gerr == nil) {
				t.Errorf("resolveRef(%q, %q) err = %v, slow err = %v", base, ref, gerr, werr)
				continue
			}
			if werr == nil && got != want {
				t.Errorf("resolveRef(%q, %q) = %q, want %q", base, ref, got, want)
			}
		}
	}
}

func TestCanonicalHeaderNameMatchesSlowPath(t *testing.T) {
	slow := func(name string) string {
		parts := strings.Split(strings.TrimSpace(name), "-")
		for i, p := range parts {
			if p == "" {
				continue
			}
			parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
		}
		return strings.Join(parts, "-")
	}
	names := []string{
		"Host", "host", "HOST", "user-agent", "User-Agent", "USER-AGENT",
		"X-VPNScope-Canary", "x-vpnscope-canary", "accept-language",
		"Content-Length", "a", "A", "-", "--", "a--b", "-leading", "trailing-",
		"  padded  ", "1-numeric", "mixed CASE inner", "Ünïcode-Header",
	}
	for _, name := range names {
		if got, want := canonicalHeaderName(name), slow(name); got != want {
			t.Errorf("canonicalHeaderName(%q) = %q, want %q", name, got, want)
		}
	}
	// Already-canonical names come back without reallocation.
	in := "X-Already-Canonical"
	if out := canonicalHeaderName(in); out != in {
		t.Errorf("canonical input changed: %q -> %q", in, out)
	}
}

var _ = strings.Compare // keep strings imported if cases shrink
