package websim

import (
	"strings"

	"vpnscope/internal/geo"
)

// CensorPolicy describes one country's national content blocking as the
// paper observed it (§6.1.1, Table 4): which site categories and
// specific hosts are blocked, and the per-ISP destinations users are
// redirected to.
type CensorPolicy struct {
	Country geo.Country
	// Categories blocked nationwide.
	Categories []Category
	// Hosts blocked explicitly (beyond categories).
	Hosts []string
	// Destinations are the redirect targets; a vantage point's ISP
	// picks one deterministically. Mirrors Table 4 of the paper.
	Destinations []string
	// EmptyBody403, when set, answers some blocked HTTPS loads with a
	// bare 403 instead of a redirect (§6.1.2's upstream-blocking
	// variant).
	EmptyBody403 bool
	// ISPOnly restricts enforcement to egresses whose network operator
	// matches one of these substrings. Dutch blocking, for instance, is
	// court-ordered per consumer ISP, not national — datacenter egress
	// in Amsterdam is unaffected.
	ISPOnly []string
}

// policies reproduces the blocking behavior behind Table 4: redirect
// destinations observed in Turkey, South Korea, Russia, the Netherlands
// and Thailand, with the categories the paper reports as most blocked
// (pornography and file sharing), plus Turkey's Wikipedia block and
// Russia's jw.org / linkedin.com blocks.
var policies = map[geo.Country]*CensorPolicy{
	"TR": {
		Country:      "TR",
		Categories:   []Category{CatPorn, CatFileShare},
		Hosts:        []string{"wikipedia.example"},
		Destinations: []string{"http://195.175.254.2"},
	},
	"KR": {
		Country:      "KR",
		Categories:   []Category{CatPorn},
		Destinations: []string{"http://warning.or.kr", "http://www.warning.or.kr"},
	},
	"RU": {
		Country:    "RU",
		Categories: []Category{CatPorn, CatFileShare},
		Hosts:      []string{"jw-org.example", "linkedin.example"},
		Destinations: []string{
			"http://fz139.ttk.ru",
			"http://zapret.hoztnode.net",
			"http://warning.rt.ru",
			"http://blocked.mts.ru",
			"http://block.dtln.ru",
			"http://blackhole.beeline.ru",
		},
	},
	"NL": {
		Country:      "NL",
		Categories:   []Category{CatFileShare},
		Destinations: []string{"https://www.ziggo.nl", "http://213.46.185.10"},
		ISPOnly:      []string{"Ziggo", "NL Hosting"},
	},
	"TH": {
		Country:      "TH",
		Categories:   []Category{CatPorn},
		Destinations: []string{"http://103.77.116.101"},
	},
}

// PolicyFor returns the censorship policy of a country, or nil when the
// country does not censor web content in the model.
func PolicyFor(c geo.Country) *CensorPolicy {
	return policies[c]
}

// Blocks reports whether the policy blocks the given site.
func (p *CensorPolicy) Blocks(site *Site) bool {
	if p == nil || site == nil {
		return false
	}
	for _, c := range p.Categories {
		if site.Category == c {
			return true
		}
	}
	for _, h := range p.Hosts {
		if strings.EqualFold(h, site.HostName) {
			return true
		}
	}
	return false
}

// ispDestinations maps ISP-name substrings to their block pages — in
// Russia and the Netherlands the redirect destination is operated by the
// egress ISP itself (Figure 6 shows TTK's), so the mapping is by
// operator, not random.
var ispDestinations = []struct{ substr, dest string }{
	{"TTK", "http://fz139.ttk.ru"},
	{"Hoztnode", "http://zapret.hoztnode.net"},
	{"Rostelecom", "http://warning.rt.ru"},
	{"MTS", "http://blocked.mts.ru"},
	{"DTLN", "http://block.dtln.ru"},
	{"Beeline", "http://blackhole.beeline.ru"},
	{"Ziggo", "https://www.ziggo.nl"},
	{"NL Hosting", "http://213.46.185.10"},
}

// DestinationFor picks the redirect destination for an egress identified
// by ispKey (the vantage point's block organization): a known national
// operator gets its own block page, anyone else a stable hash choice.
func (p *CensorPolicy) DestinationFor(ispKey string) string {
	if p == nil || len(p.Destinations) == 0 {
		return ""
	}
	for _, m := range ispDestinations {
		if strings.Contains(ispKey, m.substr) {
			for _, d := range p.Destinations {
				if d == m.dest {
					return d
				}
			}
		}
	}
	var h uint64 = 0xCBF29CE484222325
	for i := 0; i < len(ispKey); i++ {
		h ^= uint64(ispKey[i])
		h *= 0x100000001B3
	}
	return p.Destinations[h%uint64(len(p.Destinations))]
}

// Apply inspects one HTTP request leaving an egress in the policy's
// country and, if the target site is blocked, returns the censor's
// response and true. siteOf resolves a hostname to the simulated site
// (nil for unknown hosts, which are never blocked).
func (p *CensorPolicy) Apply(ispKey, hostName string, siteOf func(string) *Site) (*Response, bool) {
	if p == nil {
		return nil, false
	}
	if len(p.ISPOnly) > 0 {
		enforced := false
		for _, substr := range p.ISPOnly {
			if strings.Contains(ispKey, substr) {
				enforced = true
				break
			}
		}
		if !enforced {
			return nil, false
		}
	}
	site := siteOf(hostName)
	if !p.Blocks(site) {
		return nil, false
	}
	if p.EmptyBody403 {
		return Forbidden(), true
	}
	return Redirect(p.DestinationFor(ispKey)), true
}
