package websim

import (
	"bytes"
	"fmt"
	"strings"
)

// RegenerateHeaders re-emits a request the way a transparent proxy that
// parses and regenerates traffic would: header names are canonicalized
// to Title-Case, whitespace is normalized, and the Host header is moved
// first. No headers are added or removed — the paper found exactly this
// "modified existing headers in ways consistent with parsing and
// subsequent regeneration" signature (§6.2.1).
func RegenerateHeaders(raw []byte) []byte {
	req, err := ParseRequest(raw)
	if err != nil {
		return raw // not HTTP; pass through untouched
	}
	regen := &Request{Method: req.Method, Path: req.Path, Body: req.Body}
	var host *Header
	var rest []Header
	for _, h := range req.Headers {
		ch := Header{Name: canonicalHeaderName(h.Name), Value: strings.TrimSpace(h.Value)}
		if strings.EqualFold(ch.Name, "Host") && host == nil {
			host = &ch
			continue
		}
		if strings.EqualFold(ch.Name, "Content-Length") {
			continue // recomputed by Encode
		}
		rest = append(rest, ch)
	}
	if host != nil {
		regen.Headers = append(regen.Headers, *host)
	}
	regen.Headers = append(regen.Headers, rest...)
	return regen.Encode()
}

// canonicalHeaderName converts a header name to HTTP canonical form
// (Title-Case per dash-separated token).
func canonicalHeaderName(name string) string {
	parts := strings.Split(strings.TrimSpace(name), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// InjectOverlay rewrites an HTML response the way the trial-upsell
// injector the paper caught does (§6.1.3, Figure 7): a script hosted on
// a subdomain of the provider's own site plus an overlay advertisement
// are appended to the document. Non-HTML responses pass through.
func InjectOverlay(raw []byte, providerDomain string) []byte {
	resp, err := ParseResponse(raw)
	if err != nil || resp.Status != 200 {
		return raw
	}
	if ct, _ := resp.Header("Content-Type"); !strings.Contains(ct, "text/html") {
		return raw
	}
	snippet := fmt.Sprintf(
		`<script src="http://cdn.%s/overlay.js"></script>`+
			`<div class="upgrade-overlay">Upgrade to Premium — faster servers, no ads!</div>`,
		providerDomain)
	if i := bytes.LastIndex(resp.Body, []byte("</body>")); i >= 0 {
		var b bytes.Buffer
		b.Write(resp.Body[:i])
		b.WriteString(snippet)
		b.Write(resp.Body[i:])
		resp.Body = b.Bytes()
	} else {
		resp.Body = append(resp.Body, snippet...)
	}
	return resp.Encode()
}
