package websim

import (
	"bytes"
	"fmt"
	"strings"
)

// RegenerateHeaders re-emits a request the way a transparent proxy that
// parses and regenerates traffic would: header names are canonicalized
// to Title-Case, whitespace is normalized, and the Host header is moved
// first. No headers are added or removed — the paper found exactly this
// "modified existing headers in ways consistent with parsing and
// subsequent regeneration" signature (§6.2.1).
func RegenerateHeaders(raw []byte) []byte {
	var req Request
	if err := ParseRequestInto(&req, raw); err != nil {
		return raw // not HTTP; pass through untouched
	}
	regen := Request{Method: req.Method, Path: req.Path, Body: req.Body}
	var host *Header
	rest := make([]Header, 0, len(req.Headers))
	for _, h := range req.Headers {
		ch := Header{Name: canonicalHeaderName(h.Name), Value: strings.TrimSpace(h.Value)}
		if strings.EqualFold(ch.Name, "Host") && host == nil {
			host = &ch
			continue
		}
		if strings.EqualFold(ch.Name, "Content-Length") {
			continue // recomputed by Encode
		}
		rest = append(rest, ch)
	}
	if host != nil {
		regen.Headers = append(regen.Headers, *host)
	}
	regen.Headers = append(regen.Headers, rest...)
	return regen.Encode()
}

// canonicalHeaderName converts a header name to HTTP canonical form
// (Title-Case per dash-separated token). The ASCII fast path costs at
// most one allocation (none when the name is already canonical) and
// produces byte-identical output to the historical
// Split/ToUpper/ToLower/Join construction, which remains as the
// fallback for non-ASCII names.
func canonicalHeaderName(name string) string {
	trimmed := strings.TrimSpace(name)
	canonical := true
	tokenStart := true
	for i := 0; i < len(trimmed); i++ {
		c := trimmed[i]
		if c >= 0x80 {
			return canonicalHeaderNameSlow(trimmed)
		}
		switch {
		case c == '-':
			tokenStart = true
			continue
		case tokenStart && 'a' <= c && c <= 'z':
			canonical = false
		case !tokenStart && 'A' <= c && c <= 'Z':
			canonical = false
		}
		tokenStart = false
	}
	if canonical {
		return trimmed
	}
	var b strings.Builder
	b.Grow(len(trimmed))
	tokenStart = true
	for i := 0; i < len(trimmed); i++ {
		c := trimmed[i]
		switch {
		case c == '-':
			tokenStart = true
		case tokenStart:
			if 'a' <= c && c <= 'z' {
				c -= 'a' - 'A'
			}
			tokenStart = false
		default:
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

func canonicalHeaderNameSlow(trimmed string) string {
	parts := strings.Split(trimmed, "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// InjectOverlay rewrites an HTML response the way the trial-upsell
// injector the paper caught does (§6.1.3, Figure 7): a script hosted on
// a subdomain of the provider's own site plus an overlay advertisement
// are appended to the document. Non-HTML responses pass through.
func InjectOverlay(raw []byte, providerDomain string) []byte {
	resp, err := ParseResponse(raw)
	if err != nil || resp.Status != 200 {
		return raw
	}
	if ct, _ := resp.Header("Content-Type"); !strings.Contains(ct, "text/html") {
		return raw
	}
	snippet := fmt.Sprintf(
		`<script src="http://cdn.%s/overlay.js"></script>`+
			`<div class="upgrade-overlay">Upgrade to Premium — faster servers, no ads!</div>`,
		providerDomain)
	if i := bytes.LastIndex(resp.Body, []byte("</body>")); i >= 0 {
		var b bytes.Buffer
		b.Write(resp.Body[:i])
		b.WriteString(snippet)
		b.Write(resp.Body[i:])
		resp.Body = b.Bytes()
	} else {
		resp.Body = append(resp.Body, snippet...)
	}
	return resp.Encode()
}
