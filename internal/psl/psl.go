// Package psl implements the small slice of public-suffix-list semantics
// the redirect classifier needs (§6.1.1 of the paper): finding a
// hostname's public suffix and registered domain, and deciding whether
// two hostnames are "related".
//
// Two hostnames are related when they share a registered domain, or when
// their registered domains differ only by public suffix (the paper's
// example: a.example.com vs. b.example.org), or when an explicit manual
// override pairs them.
package psl

import (
	"strings"
)

// suffixes is the embedded rule set: a compact subset of the Mozilla
// public suffix list covering the TLDs and multi-label suffixes that
// appear in the simulated web. Wildcard and exception rules follow PSL
// semantics ("*." prefix, "!" prefix).
var suffixes = []string{
	"com", "org", "net", "edu", "gov", "mil", "int", "info", "biz",
	"io", "me", "tv", "cc", "ws", "guide",
	"co", "ru", "de", "uk", "fr", "nl", "se", "no", "fi", "dk", "ch",
	"at", "it", "es", "pt", "pl", "cz", "tr", "kr", "jp", "cn", "hk",
	"tw", "sg", "my", "th", "vn", "id", "ph", "au", "nz", "ca", "mx",
	"br", "ar", "cl", "ve", "pa", "bz", "sc", "in", "pk", "il", "sa",
	"ae", "ir", "eg", "za", "ng", "ke", "ee", "lv", "lt", "md", "ua",
	"rs", "gr", "bg", "ro", "hu", "sk", "lu", "be", "ie", "is", "sy",
	"kp", "ht",
	// Multi-label suffixes.
	"co.uk", "org.uk", "ac.uk", "gov.uk",
	"com.au", "net.au", "org.au",
	"co.kr", "or.kr", "go.kr",
	"co.jp", "or.jp", "ne.jp",
	"com.cn", "net.cn", "org.cn",
	"com.tr", "net.tr", "org.tr", "gov.tr",
	"com.ru", "net.ru", "org.ru",
	"com.br", "net.br",
	"co.in", "net.in",
	"com.sg", "com.my", "co.th", "in.th", "com.hk",
	"co.za", "org.za",
	"com.mx", "com.ar",
	// Wildcard rule example per PSL semantics.
	"*.ck",
	"!www.ck",
}

type ruleSet struct {
	exact     map[string]bool
	wildcard  map[string]bool // "ck" for "*.ck"
	exception map[string]bool // "www.ck" for "!www.ck"
}

var rules = func() *ruleSet {
	rs := &ruleSet{
		exact:     make(map[string]bool),
		wildcard:  make(map[string]bool),
		exception: make(map[string]bool),
	}
	for _, s := range suffixes {
		switch {
		case strings.HasPrefix(s, "*."):
			rs.wildcard[s[2:]] = true
		case strings.HasPrefix(s, "!"):
			rs.exception[s[1:]] = true
		default:
			rs.exact[s] = true
		}
	}
	return rs
}()

// normalize lowercases and strips a trailing dot.
func normalize(host string) string {
	host = strings.ToLower(strings.TrimSpace(host))
	host = strings.TrimSuffix(host, ".")
	return host
}

// IsIPLiteral reports whether host looks like an IPv4 or IPv6 literal;
// such "hostnames" have no public suffix.
func IsIPLiteral(host string) bool {
	host = strings.Trim(host, "[]")
	if strings.Contains(host, ":") {
		return true // IPv6-ish
	}
	parts := strings.Split(host, ".")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return false
		}
		for _, r := range p {
			if r < '0' || r > '9' {
				return false
			}
		}
	}
	return true
}

// PublicSuffix returns the public suffix of host per the embedded rules.
// Hosts with no matching rule use the last label (PSL's implicit "*"
// rule). IP literals and empty hosts return "".
func PublicSuffix(host string) string {
	host = normalize(host)
	if host == "" || IsIPLiteral(host) {
		return ""
	}
	labels := strings.Split(host, ".")
	// Walk suffixes longest-first.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		if rules.exception[candidate] {
			// Exception rules cancel the wildcard: suffix is one label
			// shorter.
			return strings.Join(labels[i+1:], ".")
		}
		if rules.exact[candidate] {
			return candidate
		}
		// Wildcard: "*.ck" matches "foo.ck" as a suffix when the parent
		// matches.
		if i+1 < len(labels) {
			parent := strings.Join(labels[i+1:], ".")
			if rules.wildcard[parent] {
				return candidate
			}
		}
	}
	// Implicit rule: the TLD itself.
	return labels[len(labels)-1]
}

// RegisteredDomain returns the registered (registrable) domain of host:
// the public suffix plus one label. It returns "" when host is itself a
// public suffix, an IP literal, or empty.
func RegisteredDomain(host string) string {
	host = normalize(host)
	if host == "" || IsIPLiteral(host) {
		return ""
	}
	suffix := PublicSuffix(host)
	if suffix == "" || host == suffix {
		return ""
	}
	rest := strings.TrimSuffix(host, "."+suffix)
	if rest == host {
		return "" // host did not actually end with suffix
	}
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix
}

// RelatedOverride records hostname pairs manually determined to be
// related (the paper allowed a manual escape hatch for rebrands, CDN
// hosts, etc.).
type RelatedOverride struct {
	pairs map[[2]string]bool
}

// NewRelatedOverride builds an override set from hostname pairs.
func NewRelatedOverride(pairs [][2]string) *RelatedOverride {
	ro := &RelatedOverride{pairs: make(map[[2]string]bool, len(pairs))}
	for _, p := range pairs {
		a, b := normalize(p[0]), normalize(p[1])
		ro.pairs[[2]string{a, b}] = true
		ro.pairs[[2]string{b, a}] = true
	}
	return ro
}

// Contains reports whether the pair (a, b) was manually marked related.
func (ro *RelatedOverride) Contains(a, b string) bool {
	if ro == nil {
		return false
	}
	return ro.pairs[[2]string{normalize(a), normalize(b)}]
}

// Related implements the paper's §6.1.1 relatedness test. Hostnames are
// related if:
//  1. they share a registered domain, or
//  2. their registered domains differ only by public suffix
//     (example.com vs example.org), or
//  3. an explicit override pairs them.
//
// IP-literal destinations are never related to hostnames (they are the
// signature of censorship block pages such as http://195.175.254.2).
func Related(a, b string, overrides *RelatedOverride) bool {
	a, b = normalize(a), normalize(b)
	if a == b && a != "" {
		return true
	}
	if overrides.Contains(a, b) {
		return true
	}
	if IsIPLiteral(a) || IsIPLiteral(b) {
		return false
	}
	ra, rb := RegisteredDomain(a), RegisteredDomain(b)
	if ra == "" || rb == "" {
		return false
	}
	if ra == rb {
		return true
	}
	// Same registrable label, different public suffix.
	la := strings.TrimSuffix(ra, "."+PublicSuffix(ra))
	lb := strings.TrimSuffix(rb, "."+PublicSuffix(rb))
	return la != "" && la == lb
}
