package psl

import (
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "com"},
		{"www.example.com", "com"},
		{"example.co.uk", "co.uk"},
		{"a.b.example.co.uk", "co.uk"},
		{"warning.or.kr", "or.kr"},
		{"fz139.ttk.ru", "ru"},
		{"example.guide", "guide"},
		{"foo.ck", "foo.ck"},      // wildcard *.ck
		{"a.foo.ck", "foo.ck"},    // under wildcard suffix
		{"www.ck", "ck"},          // exception rule
		{"unknowntld.zz", "zz"},   // implicit rule
		{"Example.COM.", "com"},   // normalization
		{"195.175.254.2", ""},     // IP literal
		{"", ""},
	}
	for _, c := range cases {
		if got := PublicSuffix(c.host); got != c.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := []struct{ host, want string }{
		{"example.com", "example.com"},
		{"www.example.com", "example.com"},
		{"a.b.example.co.uk", "example.co.uk"},
		{"warning.or.kr", "warning.or.kr"},
		{"www.warning.or.kr", "warning.or.kr"},
		{"com", ""},      // a bare public suffix has no registered domain
		{"co.uk", ""},
		{"10.0.0.1", ""}, // IP literal
		{"", ""},
	}
	for _, c := range cases {
		if got := RegisteredDomain(c.host); got != c.want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", c.host, got, c.want)
		}
	}
}

func TestIsIPLiteral(t *testing.T) {
	for _, ip := range []string{"1.2.3.4", "195.175.254.2", "::1", "[2001:db8::1]"} {
		if !IsIPLiteral(ip) {
			t.Errorf("IsIPLiteral(%q) = false", ip)
		}
	}
	for _, h := range []string{"example.com", "1.2.3.4.5", "a.b.c.d", "12345.1.1.1"} {
		if IsIPLiteral(h) {
			t.Errorf("IsIPLiteral(%q) = true", h)
		}
	}
}

func TestRelated(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// Shared registered domain.
		{"a.example.com", "b.example.com", true},
		{"www.example.com", "example.com", true},
		// Registered domains differing only by public suffix (paper's
		// explicit example).
		{"a.example.com", "b.example.org", true},
		{"example.com", "example.co.uk", true},
		// Unrelated.
		{"news-site.com", "warning.or.kr", false},
		{"example.com", "other.com", false},
		// IP literal destination: always unrelated (censorship signature).
		{"news-site.com", "195.175.254.2", false},
		// Identity.
		{"example.com", "example.com", true},
	}
	for _, c := range cases {
		if got := Related(c.a, c.b, nil); got != c.want {
			t.Errorf("Related(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRelatedOverride(t *testing.T) {
	ro := NewRelatedOverride([][2]string{{"hidemyass.com", "avast.com"}})
	if !Related("hidemyass.com", "avast.com", ro) {
		t.Error("override pair should be related")
	}
	if !Related("avast.com", "hidemyass.com", ro) {
		t.Error("override must be symmetric")
	}
	if Related("hidemyass.com", "nordvpn.com", ro) {
		t.Error("non-override pair should be unrelated")
	}
	if (*RelatedOverride)(nil).Contains("a", "b") {
		t.Error("nil override must be empty")
	}
}

func TestRelatedSymmetryProperty(t *testing.T) {
	hosts := []string{
		"a.example.com", "b.example.org", "example.co.uk", "warning.or.kr",
		"x.y.z.com", "195.175.254.2", "foo.ck", "www.ck", "site.ru",
	}
	if err := quick.Check(func(i, j uint8) bool {
		a := hosts[int(i)%len(hosts)]
		b := hosts[int(j)%len(hosts)]
		return Related(a, b, nil) == Related(b, a, nil)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegisteredDomainIsSuffixProperty(t *testing.T) {
	hosts := []string{
		"a.example.com", "deep.a.b.c.example.co.uk", "warning.or.kr",
		"x.com", "foo.bar.baz.ru",
	}
	for _, h := range hosts {
		rd := RegisteredDomain(h)
		if rd == "" {
			t.Errorf("RegisteredDomain(%q) empty", h)
			continue
		}
		if h != rd && !hasDotSuffix(h, rd) {
			t.Errorf("RegisteredDomain(%q) = %q is not a dot-suffix", h, rd)
		}
		ps := PublicSuffix(h)
		if !hasDotSuffix(rd, ps) {
			t.Errorf("PublicSuffix(%q) = %q is not a dot-suffix of %q", h, ps, rd)
		}
	}
}

func hasDotSuffix(host, suffix string) bool {
	return len(host) > len(suffix) && host[len(host)-len(suffix)-1] == '.' &&
		host[len(host)-len(suffix):] == suffix
}

func BenchmarkRegisteredDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RegisteredDomain("deep.a.b.c.example.co.uk")
	}
}
