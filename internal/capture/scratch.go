package capture

// LayerScratch holds reusable serializable-layer values for hot packet
// builders. Constructing a transport header as a pointer into this
// scratch (instead of a fresh struct literal boxed into an interface)
// and pairing it with the payload via Pair keeps the per-packet build
// path free of layer-object allocations.
//
// A scratch is single-goroutine, like the stack, client, or vantage
// point that owns it. Reuse across nested builds is safe because every
// builder serializes its layers into the packet before returning — the
// scratch is consumed before it can be overwritten.
type LayerScratch struct {
	Tunnel Tunnel
	ICMP   ICMP
	UDP    UDP
	TCP    TCP

	pay    Payload
	layers [2]SerializableLayer
}

// Pair returns {transport, payload} as a layers slice backed by the
// scratch, for splatting into a variadic builder. The slice (and the
// payload boxing) is valid until the next Pair or One call.
func (ls *LayerScratch) Pair(transport SerializableLayer, payload []byte) []SerializableLayer {
	ls.pay = Payload(payload)
	ls.layers[0], ls.layers[1] = transport, &ls.pay
	return ls.layers[:2]
}

// One returns {layer} as a scratch-backed layers slice, the
// payload-less counterpart of Pair.
func (ls *LayerScratch) One(layer SerializableLayer) []SerializableLayer {
	ls.layers[0] = layer
	return ls.layers[:1]
}
