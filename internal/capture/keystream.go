package capture

import "encoding/binary"

// Keystream caches the Scramble keystream for one session key. The
// xorshift state Scramble evolves is independent of the data being
// scrambled, so the byte stream XORed into a session's packets is a
// fixed sequence per key: generate it once, extend it lazily, and apply
// it eight bytes at a time instead of re-deriving one state step per
// byte per packet. XOR produces bytes identical to Scramble(key, data)
// by construction (see TestKeystreamMatchesScramble).
//
// A Keystream is single-goroutine, like the client or vantage point
// that owns it. The zero value is ready to use with any key; switching
// keys discards the cached stream.
type Keystream struct {
	key   uint32
	valid bool
	state uint64 // xorshift state after len(ks) steps
	ks    []byte
}

// keystreamChunk sizes each lazy extension: big enough that a typical
// tunnel session generates its stream once, small enough that short
// sessions waste little.
const keystreamChunk = 2048

// XOR applies the Scramble keystream for key to data in place,
// byte-identical to Scramble(key, data).
func (k *Keystream) XOR(key uint32, data []byte) {
	if !k.valid || k.key != key {
		k.key = key
		k.valid = true
		k.state = uint64(key)*0x9E3779B97F4A7C15 + 1
		k.ks = k.ks[:0]
	}
	for len(k.ks) < len(data) {
		k.extend()
	}
	i := 0
	for ; i+8 <= len(data); i += 8 {
		binary.LittleEndian.PutUint64(data[i:],
			binary.LittleEndian.Uint64(data[i:])^binary.LittleEndian.Uint64(k.ks[i:]))
	}
	for ; i < len(data); i++ {
		data[i] ^= k.ks[i]
	}
}

func (k *Keystream) extend() {
	state := k.state
	n := len(k.ks)
	if cap(k.ks) < n+keystreamChunk {
		grown := make([]byte, n, n+keystreamChunk)
		copy(grown, k.ks)
		k.ks = grown
	}
	for i := 0; i < keystreamChunk; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		k.ks = append(k.ks, byte(state))
	}
	k.state = state
}
