package capture

import (
	"bytes"
	"testing"
)

// TestPrependGrowthPath exercises the grow branch directly: prepends
// larger than the remaining front space, and repeated grow cycles, must
// preserve previously written bytes and return zeroed front regions.
func TestPrependGrowthPath(t *testing.T) {
	b := NewSerializeBuffer()
	b.Prepend(0) // degenerate prepend is a no-op
	if len(b.Bytes()) != 0 {
		t.Fatalf("empty buffer has %d bytes", len(b.Bytes()))
	}

	// First fill: bigger than the whole initial capacity, forcing growth
	// on the very first prepend.
	first := bytes.Repeat([]byte{0xAA}, 1000)
	copy(b.Prepend(len(first)), first)

	// Repeated grow cycles: each prepend exceeds whatever front space
	// the previous growth left.
	accum := append([]byte(nil), first...)
	for i := 0; i < 6; i++ {
		chunk := bytes.Repeat([]byte{byte(i + 1)}, 5000)
		front := b.Prepend(len(chunk))
		for j, v := range front {
			if v != 0 {
				t.Fatalf("cycle %d: front[%d] = %#x, want zeroed", i, j, v)
			}
		}
		copy(front, chunk)
		accum = append(chunk, accum...)
		if !bytes.Equal(b.Bytes(), accum) {
			t.Fatalf("cycle %d: contents diverged (len %d vs %d)", i, len(b.Bytes()), len(accum))
		}
	}

	// Clear then reuse: the grown capacity is retained, contents reset.
	b.Clear()
	if len(b.Bytes()) != 0 {
		t.Fatal("Clear left bytes behind")
	}
	copy(b.Prepend(3), "xyz")
	if string(b.Bytes()) != "xyz" {
		t.Fatalf("after clear+prepend: %q", b.Bytes())
	}
}

// TestSerializeBufferPoolReuse checks the Get/Release contract: a
// released buffer comes back cleared, whatever state it was left in.
func TestSerializeBufferPoolReuse(t *testing.T) {
	b := GetSerializeBuffer()
	copy(b.Prepend(8), "leftover")
	b.Release()
	for i := 0; i < 10; i++ {
		g := GetSerializeBuffer()
		if len(g.Bytes()) != 0 {
			t.Fatalf("pooled buffer not cleared: %q", g.Bytes())
		}
		copy(g.Prepend(4), "data")
		g.Release()
	}
}

// TestParserReuseAcrossShapes drives one DecodingLayerParser through
// packets of different shapes and checks each decode reports exactly
// its own layers — no stale layer types from the previous packet.
func TestParserReuseAcrossShapes(t *testing.T) {
	var (
		ip4 IPv4
		ip6 IPv6
		udp UDP
		tcp TCP
		ic  ICMP
		tun Tunnel
	)
	parser := NewDecodingLayerParser(TypeIPv4, &ip4, &ip6, &udp, &tcp, &ic, &tun)
	decoded := []LayerType{}

	serialize := func(layers ...SerializableLayer) []byte {
		buf := NewSerializeBuffer()
		if err := SerializeLayers(buf, layers...); err != nil {
			t.Fatal(err)
		}
		return bytes.Clone(buf.Bytes())
	}
	v4 := &IPv4{TTL: 64, Protocol: ProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")}

	// Payload is opaque (not a registered DecodingLayer), so decoding
	// stops cleanly after the innermost registered layer.
	shapes := []struct {
		name  string
		data  []byte
		first LayerType
		want  []LayerType
	}{
		{"ipv4-udp", serialize(v4, &UDP{SrcPort: 1, DstPort: 53}, Payload("q")), TypeIPv4,
			[]LayerType{TypeIPv4, TypeUDP}},
		{"ipv4-tcp", serialize(&IPv4{TTL: 64, Protocol: ProtoTCP, Src: v4.Src, Dst: v4.Dst},
			&TCP{SrcPort: 2, DstPort: 80, Flags: FlagSYN}, Payload("GET")), TypeIPv4,
			[]LayerType{TypeIPv4, TypeTCP}},
		{"ipv6-tcp", serialize(&IPv6{HopLimit: 64, Next: ProtoTCP, Src: mustAddr("2001:db8::1"), Dst: mustAddr("2001:db8::2")},
			&TCP{SrcPort: 3, DstPort: 443}, Payload("tls")), TypeIPv6,
			[]LayerType{TypeIPv6, TypeTCP}},
		{"ipv4-icmp", serialize(&IPv4{TTL: 1, Protocol: ProtoICMP, Src: v4.Src, Dst: v4.Dst},
			&ICMP{TypeCode: ICMPEchoRequest, ID: 7, Seq: 9}), TypeIPv4,
			[]LayerType{TypeIPv4, TypeICMP}},
		{"ipv4-tunnel", serialize(&IPv4{TTL: 64, Protocol: ProtoTunnel, Src: v4.Src, Dst: v4.Dst},
			&Tunnel{SessionID: 42}, Payload("inner")), TypeIPv4,
			[]LayerType{TypeIPv4, TypeTunnel}},
	}

	// Two full rounds to prove reuse is shape-order independent.
	for round := 0; round < 2; round++ {
		for _, s := range shapes {
			if err := parser.DecodeLayersFrom(s.first, s.data, &decoded); err != nil {
				t.Fatalf("round %d %s: %v", round, s.name, err)
			}
			if len(decoded) != len(s.want) {
				t.Fatalf("round %d %s: decoded %v, want %v", round, s.name, decoded, s.want)
			}
			for i := range s.want {
				if decoded[i] != s.want[i] {
					t.Fatalf("round %d %s: decoded %v, want %v", round, s.name, decoded, s.want)
				}
			}
		}
	}

	// Truncated input after a successful decode: the error must surface
	// and the decoded list must not retain the previous packet's layers.
	good := shapes[0].data
	if err := parser.DecodeLayersFrom(TypeIPv4, good, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := parser.DecodeLayersFrom(TypeIPv4, good[:ipv4HeaderLen-2], &decoded); err == nil {
		t.Fatal("truncated IPv4 header decoded without error")
	}
	if len(decoded) != 0 {
		t.Fatalf("decoded after truncated header = %v, want empty", decoded)
	}
	// Malformed at the transport layer (UDP length field claims more
	// bytes than exist): the network layer decodes, the transport error
	// surfaces, decoded holds only the network layer.
	badUDP := bytes.Clone(good)
	badUDP[ipv4HeaderLen+5] = 0xFF // UDP length low byte
	if err := parser.DecodeLayersFrom(TypeIPv4, badUDP, &decoded); err == nil {
		t.Fatal("UDP with oversized length field decoded without error")
	}
	if len(decoded) != 1 || decoded[0] != TypeIPv4 {
		t.Fatalf("decoded after truncated UDP = %v, want [IPv4]", decoded)
	}
	// And a clean decode afterwards fully recovers.
	if err := parser.DecodeLayersFrom(TypeIPv4, good, &decoded); err != nil {
		t.Fatalf("decode after malformed inputs: %v", err)
	}
	if len(decoded) != 2 || decoded[0] != TypeIPv4 || decoded[1] != TypeUDP {
		t.Fatalf("decoded = %v", decoded)
	}
}

// TestPacketDecoderReuse checks the pooled high-level decoder: typed
// accessors must reflect only the current packet, across acquire/release
// cycles and across malformed inputs.
func TestPacketDecoderReuse(t *testing.T) {
	udpPkt := buildIPv4UDP(t, []byte("payload-bytes"))

	d := AcquirePacketDecoder()
	if err := d.Decode(udpPkt, TypeIPv4); err != nil {
		t.Fatal(err)
	}
	if u, ok := d.UDP(); !ok || u.DstPort != 53 {
		t.Fatalf("UDP() = %v, %v", u, ok)
	}
	if _, ok := d.TCP(); ok {
		t.Fatal("TCP() reported true for a UDP packet")
	}
	src, dst, ok := d.Addrs()
	if !ok || src != mustAddr("10.0.0.1") || dst != mustAddr("8.8.8.8") {
		t.Fatalf("Addrs() = %v %v %v", src, dst, ok)
	}
	if string(d.Payload()) != "payload-bytes" {
		t.Fatalf("Payload() = %q", d.Payload())
	}

	// Malformed after success: accessors must not echo the stale packet.
	if err := d.Decode(udpPkt[:3], TypeIPv4); err == nil {
		t.Fatal("truncated packet decoded without error")
	}
	if _, ok := d.UDP(); ok {
		t.Fatal("UDP() reported stale layer after failed decode")
	}
	if _, _, ok := d.Addrs(); ok {
		t.Fatal("Addrs() reported stale addresses after failed decode")
	}
	d.Release()

	// A fresh acquire decodes a different shape cleanly.
	d2 := AcquirePacketDecoder()
	defer d2.Release()
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf,
		&IPv6{HopLimit: 64, Next: ProtoTCP, Src: mustAddr("2001:db8::a"), Dst: mustAddr("2001:db8::b")},
		&TCP{SrcPort: 9, DstPort: 443}, Payload("x"),
	); err != nil {
		t.Fatal(err)
	}
	if err := d2.Decode(buf.Bytes(), TypeIPv6); err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.UDP(); ok {
		t.Fatal("UDP() true for a TCP packet on a pooled decoder")
	}
	if tc, ok := d2.TCP(); !ok || tc.DstPort != 443 {
		t.Fatalf("TCP() = %v, %v", tc, ok)
	}
	if _, _, ok := d2.Addrs(); !ok {
		t.Fatal("Addrs() false for IPv6 packet")
	}
}
