package capture

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ---------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------

// IPv4 is an IPv4 header (20 bytes, no options in this simulator).
type IPv4 struct {
	TTL      byte
	Protocol IPProtocol
	Src, Dst netip.Addr

	contents, payload []byte
}

const ipv4HeaderLen = 20

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return TypeIPv4 }

// LayerContents implements Layer.
func (ip *IPv4) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// NetworkFlow implements NetworkLayer.
func (ip *IPv4) NetworkFlow() Flow {
	return Flow{EndpointIP, ip.Src.AsSlice(), ip.Dst.AsSlice()}
}

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < ipv4HeaderLen {
		return &DecodeError{TypeIPv4, "truncated header"}
	}
	if version := data[0] >> 4; version != 4 {
		return &DecodeError{TypeIPv4, fmt.Sprintf("version %d", version)}
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ipv4HeaderLen || totalLen > len(data) {
		return &DecodeError{TypeIPv4, "bad total length"}
	}
	ip.TTL = data[8]
	ip.Protocol = IPProtocol(data[9])
	src, _ := netip.AddrFromSlice(data[12:16])
	dst, _ := netip.AddrFromSlice(data[16:20])
	ip.Src, ip.Dst = src, dst
	ip.contents = data[:ipv4HeaderLen]
	ip.payload = data[ipv4HeaderLen:totalLen]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType { return ip.Protocol.layerType() }

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("capture: IPv4 layer with non-v4 address %v -> %v", ip.Src, ip.Dst)
	}
	payloadLen := len(b.Bytes())
	hdr := b.Prepend(ipv4HeaderLen)
	hdr[0] = 4<<4 | 5 // version 4, IHL 5
	total := ipv4HeaderLen + payloadLen
	if total > 0xFFFF {
		return fmt.Errorf("capture: IPv4 packet too large (%d bytes)", total)
	}
	binary.BigEndian.PutUint16(hdr[2:4], uint16(total))
	hdr[8] = ip.TTL
	hdr[9] = byte(ip.Protocol)
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], headerChecksum(hdr))
	ip.contents = hdr
	return nil
}

// headerChecksum computes the RFC 791 header checksum with the checksum
// field zeroed.
func headerChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}

// ---------------------------------------------------------------------
// IPv6
// ---------------------------------------------------------------------

// IPv6 is an IPv6 fixed header (40 bytes, no extension headers).
type IPv6 struct {
	HopLimit byte
	Next     IPProtocol
	Src, Dst netip.Addr

	contents, payload []byte
}

const ipv6HeaderLen = 40

// LayerType implements Layer.
func (ip *IPv6) LayerType() LayerType { return TypeIPv6 }

// LayerContents implements Layer.
func (ip *IPv6) LayerContents() []byte { return ip.contents }

// LayerPayload implements Layer.
func (ip *IPv6) LayerPayload() []byte { return ip.payload }

// NetworkFlow implements NetworkLayer.
func (ip *IPv6) NetworkFlow() Flow {
	return Flow{EndpointIP, ip.Src.AsSlice(), ip.Dst.AsSlice()}
}

// DecodeFromBytes implements DecodingLayer.
func (ip *IPv6) DecodeFromBytes(data []byte) error {
	if len(data) < ipv6HeaderLen {
		return &DecodeError{TypeIPv6, "truncated header"}
	}
	if version := data[0] >> 4; version != 6 {
		return &DecodeError{TypeIPv6, fmt.Sprintf("version %d", version)}
	}
	payloadLen := int(binary.BigEndian.Uint16(data[4:6]))
	if ipv6HeaderLen+payloadLen > len(data) {
		return &DecodeError{TypeIPv6, "bad payload length"}
	}
	ip.Next = IPProtocol(data[6])
	ip.HopLimit = data[7]
	src, _ := netip.AddrFromSlice(data[8:24])
	dst, _ := netip.AddrFromSlice(data[24:40])
	ip.Src, ip.Dst = src, dst
	ip.contents = data[:ipv6HeaderLen]
	ip.payload = data[ipv6HeaderLen : ipv6HeaderLen+payloadLen]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ip *IPv6) NextLayerType() LayerType { return ip.Next.layerType() }

// SerializeTo implements SerializableLayer.
func (ip *IPv6) SerializeTo(b *SerializeBuffer) error {
	if !ip.Src.Is6() || ip.Src.Is4In6() || !ip.Dst.Is6() || ip.Dst.Is4In6() {
		return fmt.Errorf("capture: IPv6 layer with non-v6 address %v -> %v", ip.Src, ip.Dst)
	}
	payloadLen := len(b.Bytes())
	if payloadLen > 0xFFFF {
		return fmt.Errorf("capture: IPv6 payload too large (%d bytes)", payloadLen)
	}
	hdr := b.Prepend(ipv6HeaderLen)
	hdr[0] = 6 << 4
	binary.BigEndian.PutUint16(hdr[4:6], uint16(payloadLen))
	hdr[6] = byte(ip.Next)
	hdr[7] = ip.HopLimit
	src, dst := ip.Src.As16(), ip.Dst.As16()
	copy(hdr[8:24], src[:])
	copy(hdr[24:40], dst[:])
	ip.contents = hdr
	return nil
}

// ---------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16

	contents, payload []byte
}

const udpHeaderLen = 8

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return TypeUDP }

// LayerContents implements Layer.
func (u *UDP) LayerContents() []byte { return u.contents }

// LayerPayload implements Layer.
func (u *UDP) LayerPayload() []byte { return u.payload }

// TransportFlow implements TransportLayer.
func (u *UDP) TransportFlow() Flow {
	return Flow{EndpointUDPPort, port(u.SrcPort), port(u.DstPort)}
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return &DecodeError{TypeUDP, "truncated header"}
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < udpHeaderLen || length > len(data) {
		return &DecodeError{TypeUDP, "bad length"}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.contents = data[:udpHeaderLen]
	u.payload = data[udpHeaderLen:length]
	return nil
}

// NextLayerType implements DecodingLayer.
func (u *UDP) NextLayerType() LayerType { return TypePayload }

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	total := udpHeaderLen + len(b.Bytes())
	if total > 0xFFFF {
		return fmt.Errorf("capture: UDP datagram too large (%d bytes)", total)
	}
	hdr := b.Prepend(udpHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(total))
	u.contents = hdr
	return nil
}

// ---------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------

// TCP flag bits, in wire order.
const (
	FlagFIN byte = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// TCP is a TCP header (20 bytes, no options).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            byte

	contents, payload []byte
}

const tcpHeaderLen = 20

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return TypeTCP }

// LayerContents implements Layer.
func (t *TCP) LayerContents() []byte { return t.contents }

// LayerPayload implements Layer.
func (t *TCP) LayerPayload() []byte { return t.payload }

// TransportFlow implements TransportLayer.
func (t *TCP) TransportFlow() Flow {
	return Flow{EndpointTCPPort, port(t.SrcPort), port(t.DstPort)}
}

// SYN, ACK, RST, FIN, PSH report individual flag bits.
func (t *TCP) SYN() bool { return t.Flags&FlagSYN != 0 }
func (t *TCP) ACK() bool { return t.Flags&FlagACK != 0 }
func (t *TCP) RST() bool { return t.Flags&FlagRST != 0 }
func (t *TCP) FIN() bool { return t.Flags&FlagFIN != 0 }
func (t *TCP) PSH() bool { return t.Flags&FlagPSH != 0 }

// DecodeFromBytes implements DecodingLayer.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpHeaderLen {
		return &DecodeError{TypeTCP, "truncated header"}
	}
	dataOff := int(data[12]>>4) * 4
	if dataOff < tcpHeaderLen || dataOff > len(data) {
		return &DecodeError{TypeTCP, "bad data offset"}
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = data[13] & 0x1F
	t.contents = data[:dataOff]
	t.payload = data[dataOff:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (t *TCP) NextLayerType() LayerType { return TypePayload }

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	hdr := b.Prepend(tcpHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], t.DstPort)
	binary.BigEndian.PutUint32(hdr[4:8], t.Seq)
	binary.BigEndian.PutUint32(hdr[8:12], t.Ack)
	hdr[12] = 5 << 4 // data offset: 5 words
	hdr[13] = t.Flags & 0x1F
	t.contents = hdr
	return nil
}

// ---------------------------------------------------------------------
// ICMP (echo only — all the simulator needs for ping/traceroute)
// ---------------------------------------------------------------------

// ICMP echo types (real values for v4; v6 uses the same struct).
const (
	ICMPEchoRequest  byte = 8
	ICMPEchoReply    byte = 0
	ICMPTimeExceeded byte = 11
)

// ICMP is a minimal ICMP message: type, code, identifier, sequence.
type ICMP struct {
	TypeCode byte // ICMPEchoRequest, ICMPEchoReply, ICMPTimeExceeded
	Code     byte
	ID, Seq  uint16

	contents, payload []byte
}

const icmpHeaderLen = 8

// LayerType implements Layer.
func (ic *ICMP) LayerType() LayerType { return TypeICMP }

// LayerContents implements Layer.
func (ic *ICMP) LayerContents() []byte { return ic.contents }

// LayerPayload implements Layer.
func (ic *ICMP) LayerPayload() []byte { return ic.payload }

// DecodeFromBytes implements DecodingLayer.
func (ic *ICMP) DecodeFromBytes(data []byte) error {
	if len(data) < icmpHeaderLen {
		return &DecodeError{TypeICMP, "truncated header"}
	}
	ic.TypeCode = data[0]
	ic.Code = data[1]
	ic.ID = binary.BigEndian.Uint16(data[4:6])
	ic.Seq = binary.BigEndian.Uint16(data[6:8])
	ic.contents = data[:icmpHeaderLen]
	ic.payload = data[icmpHeaderLen:]
	return nil
}

// NextLayerType implements DecodingLayer.
func (ic *ICMP) NextLayerType() LayerType { return TypePayload }

// SerializeTo implements SerializableLayer.
func (ic *ICMP) SerializeTo(b *SerializeBuffer) error {
	hdr := b.Prepend(icmpHeaderLen)
	hdr[0] = ic.TypeCode
	hdr[1] = ic.Code
	binary.BigEndian.PutUint16(hdr[4:6], ic.ID)
	binary.BigEndian.PutUint16(hdr[6:8], ic.Seq)
	ic.contents = hdr
	return nil
}

// ---------------------------------------------------------------------
// Tunnel (VPN encapsulation)
// ---------------------------------------------------------------------

// Tunnel is the VPN encapsulation layer: a session identifier followed by
// the "encrypted" inner packet. The simulator XOR-scrambles the inner
// bytes with a session key so that a capture of tunneled traffic does not
// contain cleartext inner packets — leak analysis must not be able to
// cheat by reading through the tunnel.
type Tunnel struct {
	SessionID uint32

	contents, payload []byte
}

const tunnelHeaderLen = 8

// LayerType implements Layer.
func (tn *Tunnel) LayerType() LayerType { return TypeTunnel }

// LayerContents implements Layer.
func (tn *Tunnel) LayerContents() []byte { return tn.contents }

// LayerPayload returns the encrypted inner bytes.
func (tn *Tunnel) LayerPayload() []byte { return tn.payload }

// DecodeFromBytes implements DecodingLayer.
func (tn *Tunnel) DecodeFromBytes(data []byte) error {
	if len(data) < tunnelHeaderLen {
		return &DecodeError{TypeTunnel, "truncated header"}
	}
	if string(data[0:4]) != "VPN0" {
		return &DecodeError{TypeTunnel, "bad magic"}
	}
	tn.SessionID = binary.BigEndian.Uint32(data[4:8])
	tn.contents = data[:tunnelHeaderLen]
	tn.payload = data[tunnelHeaderLen:]
	return nil
}

// NextLayerType implements DecodingLayer. Tunnel payloads are opaque.
func (tn *Tunnel) NextLayerType() LayerType { return TypePayload }

// SerializeTo implements SerializableLayer.
func (tn *Tunnel) SerializeTo(b *SerializeBuffer) error {
	hdr := b.Prepend(tunnelHeaderLen)
	copy(hdr[0:4], "VPN0")
	binary.BigEndian.PutUint32(hdr[4:8], tn.SessionID)
	tn.contents = hdr
	return nil
}

// Scramble XOR-scrambles (or unscrambles — the operation is an
// involution) data in place with a keystream derived from the session
// key, modeling tunnel encryption without real cryptography.
func Scramble(key uint32, data []byte) {
	state := uint64(key)*0x9E3779B97F4A7C15 + 1
	for i := range data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		data[i] ^= byte(state)
	}
}

// ---------------------------------------------------------------------
// Payload
// ---------------------------------------------------------------------

// Payload is opaque application bytes.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return TypePayload }

// LayerContents implements Layer.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload implements Layer.
func (p Payload) LayerPayload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.Prepend(len(p)), p)
	return nil
}

func port(p uint16) []byte {
	return []byte{byte(p >> 8), byte(p)}
}
