package capture

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildIPv4UDP(t testing.TB, payload []byte) []byte {
	t.Helper()
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf,
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("8.8.8.8")},
		&UDP{SrcPort: 40000, DstPort: 53},
		Payload(payload),
	)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Clone(buf.Bytes())
}

func TestIPv4UDPRoundTrip(t *testing.T) {
	data := buildIPv4UDP(t, []byte("hello dns"))
	p := NewPacket(data, TypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer())
	}
	ip, ok := p.Layer(TypeIPv4).(*IPv4)
	if !ok {
		t.Fatal("no IPv4 layer")
	}
	if ip.Src != mustAddr("10.0.0.1") || ip.Dst != mustAddr("8.8.8.8") {
		t.Errorf("addresses: %v -> %v", ip.Src, ip.Dst)
	}
	if ip.TTL != 64 || ip.Protocol != ProtoUDP {
		t.Errorf("TTL=%d proto=%d", ip.TTL, ip.Protocol)
	}
	udp, ok := p.Layer(TypeUDP).(*UDP)
	if !ok {
		t.Fatal("no UDP layer")
	}
	if udp.SrcPort != 40000 || udp.DstPort != 53 {
		t.Errorf("ports: %d -> %d", udp.SrcPort, udp.DstPort)
	}
	if string(p.ApplicationLayer()) != "hello dns" {
		t.Errorf("payload = %q", p.ApplicationLayer())
	}
	if p.String() != "IPv4/UDP/Payload" {
		t.Errorf("stack = %s", p.String())
	}
}

func TestIPv6TCPRoundTrip(t *testing.T) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf,
		&IPv6{HopLimit: 60, Next: ProtoTCP, Src: mustAddr("2001:db8::1"), Dst: mustAddr("2001:db8::2")},
		&TCP{SrcPort: 55555, DstPort: 443, Seq: 7, Ack: 9, Flags: FlagSYN | FlagACK},
		Payload([]byte("tls hello")),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(buf.Bytes(), TypeIPv6, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer())
	}
	ip := p.NetworkLayer().(*IPv6)
	if ip.Src != mustAddr("2001:db8::1") {
		t.Errorf("src = %v", ip.Src)
	}
	tcp := p.TransportLayer().(*TCP)
	if !tcp.SYN() || !tcp.ACK() || tcp.RST() {
		t.Errorf("flags = %08b", tcp.Flags)
	}
	if tcp.Seq != 7 || tcp.Ack != 9 {
		t.Errorf("seq/ack = %d/%d", tcp.Seq, tcp.Ack)
	}
	if string(p.ApplicationLayer()) != "tls hello" {
		t.Errorf("payload = %q", p.ApplicationLayer())
	}
}

func TestICMPRoundTrip(t *testing.T) {
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf,
		&IPv4{TTL: 64, Protocol: ProtoICMP, Src: mustAddr("1.1.1.1"), Dst: mustAddr("2.2.2.2")},
		&ICMP{TypeCode: ICMPEchoRequest, ID: 77, Seq: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(buf.Bytes(), TypeIPv4, Default)
	ic, ok := p.Layer(TypeICMP).(*ICMP)
	if !ok {
		t.Fatalf("no ICMP layer in %s", p)
	}
	if ic.TypeCode != ICMPEchoRequest || ic.ID != 77 || ic.Seq != 3 {
		t.Errorf("icmp = %+v", ic)
	}
}

func TestTunnelScrambleRoundTrip(t *testing.T) {
	inner := buildIPv4UDP(t, []byte("secret query"))
	enc := bytes.Clone(inner)
	Scramble(12345, enc)
	if bytes.Equal(enc, inner) {
		t.Fatal("scramble must change bytes")
	}
	// Inner cleartext must not appear in the scrambled body.
	if bytes.Contains(enc, []byte("secret query")) {
		t.Fatal("cleartext visible through tunnel")
	}
	buf := NewSerializeBuffer()
	err := SerializeLayers(buf,
		&IPv4{TTL: 64, Protocol: ProtoTunnel, Src: mustAddr("10.0.0.1"), Dst: mustAddr("93.184.216.34")},
		&Tunnel{SessionID: 12345},
		Payload(enc),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPacket(buf.Bytes(), TypeIPv4, Default)
	tn, ok := p.Layer(TypeTunnel).(*Tunnel)
	if !ok {
		t.Fatalf("no tunnel layer in %s", p)
	}
	if tn.SessionID != 12345 {
		t.Errorf("session = %d", tn.SessionID)
	}
	dec := bytes.Clone(tn.LayerPayload())
	Scramble(12345, dec)
	if !bytes.Equal(dec, inner) {
		t.Fatal("scramble is not an involution")
	}
}

func TestDecodeErrors(t *testing.T) {
	// Truncated IPv4.
	p := NewPacket([]byte{0x45, 0, 0}, TypeIPv4, Default)
	if p.ErrorLayer() == nil {
		t.Error("expected error for truncated IPv4")
	}
	// Wrong version nibble.
	bad := make([]byte, 20)
	bad[0] = 0x65
	p = NewPacket(bad, TypeIPv4, Default)
	if p.ErrorLayer() == nil {
		t.Error("expected error for bad version")
	}
	// Bad tunnel magic.
	p = NewPacket([]byte("XXXX1234"), TypeTunnel, Default)
	if p.ErrorLayer() == nil {
		t.Error("expected error for bad tunnel magic")
	}
	// Layers decoded before the failure stay available.
	data := buildIPv4UDP(t, []byte("x"))
	trunc := data[:22] // cuts into the UDP header
	// Fix up IPv4 total length so the IPv4 layer itself decodes.
	trunc[2], trunc[3] = 0, 22
	p = NewPacket(trunc, TypeIPv4, Default)
	if p.Layer(TypeIPv4) == nil {
		t.Error("IPv4 layer should survive downstream decode failure")
	}
	if p.ErrorLayer() == nil || p.ErrorLayer().Type != TypeUDP {
		t.Errorf("error layer = %v", p.ErrorLayer())
	}
}

func TestNoCopySemantics(t *testing.T) {
	data := buildIPv4UDP(t, []byte("aaaa"))
	pCopy := NewPacket(data, TypeIPv4, Default)
	pNoCopy := NewPacket(data, TypeIPv4, NoCopy)
	data[len(data)-1] = 'z'
	if string(pCopy.ApplicationLayer()) != "aaaa" {
		t.Error("Default mode must be immune to caller mutation")
	}
	if string(pNoCopy.ApplicationLayer()) == "aaaa" {
		t.Error("NoCopy mode shares the caller's bytes")
	}
}

func TestFlows(t *testing.T) {
	data := buildIPv4UDP(t, []byte("q"))
	p := NewPacket(data, TypeIPv4, Default)
	nf := p.NetworkLayer().NetworkFlow()
	if nf.Kind != EndpointIP {
		t.Errorf("kind = %v", nf.Kind)
	}
	rev := nf.Reverse()
	if !bytes.Equal(rev.Src(), nf.Dst()) || !bytes.Equal(rev.Dst(), nf.Src()) {
		t.Error("Reverse must swap endpoints")
	}
	if nf.FastHash() != rev.FastHash() {
		t.Error("FastHash must be symmetric")
	}
	if nf.Key() == rev.Key() {
		t.Error("Key must be directional")
	}
	tf := p.TransportLayer().TransportFlow()
	if tf.Kind != EndpointUDPPort {
		t.Errorf("transport kind = %v", tf.Kind)
	}
}

func TestDecodingLayerParser(t *testing.T) {
	var ip4 IPv4
	var udp UDP
	parser := NewDecodingLayerParser(TypeIPv4, &ip4, &udp)
	decoded := []LayerType{}
	data := buildIPv4UDP(t, []byte("fast path"))
	if err := parser.DecodeLayers(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0] != TypeIPv4 || decoded[1] != TypeUDP {
		t.Fatalf("decoded = %v", decoded)
	}
	if udp.DstPort != 53 {
		t.Errorf("dst port = %d", udp.DstPort)
	}
	// An unregistered next layer stops cleanly.
	buf := NewSerializeBuffer()
	if err := SerializeLayers(buf,
		&IPv4{TTL: 1, Protocol: ProtoTCP, Src: mustAddr("1.2.3.4"), Dst: mustAddr("4.3.2.1")},
		&TCP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := parser.DecodeLayers(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != TypeIPv4 {
		t.Fatalf("decoded = %v, want [IPv4]", decoded)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	big := make(Payload, 10000)
	for i := range big {
		big[i] = byte(i)
	}
	if err := big.SerializeTo(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), big) {
		t.Fatal("large prepend corrupted data")
	}
	// Prepend after growth keeps existing bytes.
	front := b.Prepend(4)
	copy(front, "abcd")
	got := b.Bytes()
	if string(got[:4]) != "abcd" || !bytes.Equal(got[4:], big) {
		t.Fatal("prepend after growth corrupted data")
	}
}

func TestIPv4Checksum(t *testing.T) {
	data := buildIPv4UDP(t, []byte("x"))
	// Recompute checksum over the received header; a correct RFC 791
	// checksum makes the full-header one's-complement sum equal 0xFFFF.
	var sum uint32
	for i := 0; i+1 < ipv4HeaderLen; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	if sum != 0xFFFF {
		t.Errorf("header checksum does not verify: sum=%#x", sum)
	}
}

func TestSerializeRejectsWrongFamily(t *testing.T) {
	buf := NewSerializeBuffer()
	ip := &IPv4{Src: mustAddr("2001:db8::1"), Dst: mustAddr("1.2.3.4"), Protocol: ProtoUDP}
	if err := ip.SerializeTo(buf); err == nil {
		t.Error("IPv4 layer must reject v6 addresses")
	}
	buf.Clear()
	ip6 := &IPv6{Src: mustAddr("1.2.3.4"), Dst: mustAddr("2001:db8::1"), Next: ProtoUDP}
	if err := ip6.SerializeTo(buf); err == nil {
		t.Error("IPv6 layer must reject v4 addresses")
	}
}

func TestScrambleProperties(t *testing.T) {
	if err := quick.Check(func(key uint32, data []byte) bool {
		orig := bytes.Clone(data)
		Scramble(key, data)
		Scramble(key, data)
		return bytes.Equal(data, orig)
	}, nil); err != nil {
		t.Fatal("scramble involution:", err)
	}
	// Different keys produce different ciphertexts (over non-trivial data).
	data := bytes.Repeat([]byte("A"), 64)
	a, b := bytes.Clone(data), bytes.Clone(data)
	Scramble(1, a)
	Scramble(2, b)
	if bytes.Equal(a, b) {
		t.Fatal("different keys produced identical ciphertext")
	}
}

func TestPacketRoundTripProperty(t *testing.T) {
	// Any payload survives serialize->decode unchanged.
	if err := quick.Check(func(payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		buf := NewSerializeBuffer()
		err := SerializeLayers(buf,
			&IPv4{TTL: 64, Protocol: ProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")},
			&UDP{SrcPort: 1234, DstPort: 5678},
			Payload(payload),
		)
		if err != nil {
			return false
		}
		p := NewPacket(buf.Bytes(), TypeIPv4, Default)
		if p.ErrorLayer() != nil {
			return false
		}
		return bytes.Equal(p.ApplicationLayer(), payload)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSinkAndPcapRoundTrip(t *testing.T) {
	s := NewSink()
	d1 := buildIPv4UDP(t, []byte("one"))
	d2 := buildIPv4UDP(t, []byte("two"))
	s.Capture(1500*time.Millisecond, "en0", DirOut, d1)
	s.Capture(2500*time.Millisecond, "utun0", DirIn, d2)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	outOnly := s.Filter(func(r Record) bool { return r.Dir == DirOut })
	if len(outOnly) != 1 || outOnly[0].Interface != "en0" {
		t.Fatalf("filter = %+v", outOnly)
	}

	var buf bytes.Buffer
	if err := WritePcap(&buf, s.Records()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d records", len(back))
	}
	if !bytes.Equal(back[0].Data, d1) || !bytes.Equal(back[1].Data, d2) {
		t.Fatal("pcap round trip corrupted data")
	}
	if back[0].Time != 1500*time.Millisecond {
		t.Errorf("timestamp = %v", back[0].Time)
	}
	// Capture must copy: mutate the original buffer.
	d1[0] = 0xFF
	if s.Records()[0].Data[0] == 0xFF {
		t.Error("sink must copy packet bytes")
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all......"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestSinkReset(t *testing.T) {
	s := NewSink()
	s.Capture(0, "en0", DirOut, []byte{1})
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func BenchmarkNewPacket(b *testing.B) {
	data := buildIPv4UDP(b, bytes.Repeat([]byte("q"), 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewPacket(data, TypeIPv4, Default)
	}
}

// BenchmarkDecodingLayerParser is the ablation bench for DESIGN.md key
// decision 3: the preallocated fast path vs NewPacket.
func BenchmarkDecodingLayerParser(b *testing.B) {
	data := buildIPv4UDP(b, bytes.Repeat([]byte("q"), 64))
	var ip4 IPv4
	var udp UDP
	parser := NewDecodingLayerParser(TypeIPv4, &ip4, &udp)
	decoded := make([]LayerType, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := parser.DecodeLayers(data, &decoded); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeLayers(b *testing.B) {
	buf := NewSerializeBuffer()
	ip := &IPv4{TTL: 64, Protocol: ProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("8.8.8.8")}
	udp := &UDP{SrcPort: 40000, DstPort: 53}
	payload := Payload(bytes.Repeat([]byte("q"), 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, ip, udp, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScramble(b *testing.B) {
	data := make([]byte, 1500)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Scramble(42, data)
	}
}
