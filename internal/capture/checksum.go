package capture

// HeaderChecksum computes the RFC 791 IPv4 header checksum of hdr with
// the checksum field (bytes 10-11) excluded — the full recompute the
// incremental update below must stay byte-identical to.
func HeaderChecksum(hdr []byte) uint16 {
	return headerChecksum(hdr)
}

// ChecksumUpdate folds the replacement of one 16-bit header word into
// an existing checksum without re-summing the header (RFC 1624, Eqn 3:
// HC' = ~(~HC + ~m + m')). Safe here against the one's-complement
// ±0 ambiguity RFC 1624 §3 warns about: a simulator IPv4 header always
// has hdr[0] = 0x45, so the skip-checksum word sum is never zero and
// both the full recompute and this update produce the same folded
// representation (proven exhaustively by FuzzPacketPrototype).
func ChecksumUpdate(hc, oldWord, newWord uint16) uint16 {
	sum := uint32(^hc) + uint32(^oldWord) + uint32(newWord)
	for sum > 0xFFFF {
		sum = sum>>16 + sum&0xFFFF
	}
	return ^uint16(sum)
}
