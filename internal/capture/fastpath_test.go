package capture

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
)

// TestKeystreamMatchesScramble pins Keystream.XOR to Scramble across
// lengths, keys, and key switches mid-stream: the cached keystream must
// be indistinguishable from regenerating it per call.
func TestKeystreamMatchesScramble(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var ks Keystream
	keys := []uint32{0, 1, 0xDEADBEEF, 1 << 31, 7, 7} // repeats exercise the cache hit
	for round := 0; round < 200; round++ {
		key := keys[rng.Intn(len(keys))]
		n := rng.Intn(4096)
		data := make([]byte, n)
		rng.Read(data)
		want := append([]byte(nil), data...)
		Scramble(key, want)
		ks.XOR(key, data)
		if !bytes.Equal(data, want) {
			t.Fatalf("round %d (key %08x, len %d): XOR != Scramble", round, key, n)
		}
	}
}

func TestKeystreamAllocSteadyState(t *testing.T) {
	var ks Keystream
	data := make([]byte, 1500)
	ks.XOR(42, data) // warm the cache
	if n := testing.AllocsPerRun(100, func() { ks.XOR(42, data) }); n > 0 {
		t.Errorf("steady-state XOR allocates %v per call", n)
	}
}

// TestParseViewMatchesDecoder runs the shape fast path and the full
// decoder over valid, truncated, and bit-flipped packets: the view must
// report the same fields and the same error the decoder pass does.
func TestParseViewMatchesDecoder(t *testing.T) {
	src4, dst4 := netip.MustParseAddr("203.0.113.10"), netip.MustParseAddr("93.184.216.34")
	src6, dst6 := netip.MustParseAddr("2001:db8::10"), netip.MustParseAddr("2001:db8::22")
	pay := Payload([]byte("view fast path"))

	build := func(v6 bool, layers ...SerializableLayer) []byte {
		t.Helper()
		sb := GetSerializeBuffer()
		defer sb.Release()
		ip := SerializableLayer(&IPv4{Src: src4, Dst: dst4, TTL: 64, Protocol: protoFor(layers[0])})
		if v6 {
			ip = &IPv6{Src: src6, Dst: dst6, HopLimit: 64, Next: protoFor(layers[0])}
		}
		all := append([]SerializableLayer{ip}, layers...)
		if err := SerializeLayers(sb, all...); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), sb.Bytes()...)
	}

	var pkts [][]byte
	for _, v6 := range []bool{false, true} {
		pkts = append(pkts,
			build(v6, &UDP{SrcPort: 4000, DstPort: 53}, pay),
			build(v6, &UDP{SrcPort: 4000, DstPort: 53}),
			build(v6, &TCP{SrcPort: 5000, DstPort: 443, Seq: 9, Ack: 10, Flags: FlagACK | FlagPSH}, pay),
			build(v6, &ICMP{TypeCode: ICMPEchoRequest, ID: 7, Seq: 3}, pay),
			build(v6, &Tunnel{SessionID: 0xCAFEBABE}, pay),
			build(v6, &Tunnel{SessionID: 1}),
		)
	}
	// Degenerate shapes.
	pkts = append(pkts, nil, []byte{}, []byte{0x45}, []byte{0x60}, []byte{0x00, 0x11})

	// Truncations and single-byte corruptions of every packet.
	base := len(pkts)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < base; i++ {
		p := pkts[i]
		for cut := 0; cut < len(p); cut += 1 + rng.Intn(4) {
			pkts = append(pkts, p[:cut])
		}
		for flip := 0; flip < 32 && len(p) > 0; flip++ {
			q := append([]byte(nil), p...)
			q[rng.Intn(len(q))] ^= byte(1 << rng.Intn(8))
			pkts = append(pkts, q)
		}
	}

	for i, pkt := range pkts {
		var v PacketView
		gotErr := ParseView(pkt, &v)
		wantView, wantErr := decoderView(pkt)
		if errText(gotErr) != errText(wantErr) {
			t.Fatalf("pkt %d (%x): ParseView err %q, decoder err %q", i, pkt, errText(gotErr), errText(wantErr))
		}
		if gotErr != nil {
			continue
		}
		if v.Src != wantView.Src || v.Dst != wantView.Dst || v.TTL != wantView.TTL ||
			v.Transport != wantView.Transport || v.SrcPort != wantView.SrcPort ||
			v.DstPort != wantView.DstPort || v.Seq != wantView.Seq || v.Ack != wantView.Ack ||
			v.TCPFlags != wantView.TCPFlags || v.ICMPType != wantView.ICMPType ||
			v.ICMPCode != wantView.ICMPCode || v.ICMPID != wantView.ICMPID ||
			v.ICMPSeq != wantView.ICMPSeq || v.Session != wantView.Session ||
			v.HasNet != wantView.HasNet {
			t.Fatalf("pkt %d (%x): view %+v, decoder view %+v", i, pkt, v, wantView)
		}
		if !bytes.Equal(v.Payload, wantView.Payload) || (v.Payload == nil) != (wantView.Payload == nil) {
			t.Fatalf("pkt %d (%x): payload %v, decoder payload %v", i, pkt, v.Payload, wantView.Payload)
		}
	}
}

// decoderView is the reference: always the full decoder pass.
func decoderView(pkt []byte) (PacketView, error) {
	var v PacketView
	err := slowView(pkt, &v)
	return v, err
}

func protoFor(l SerializableLayer) IPProtocol {
	switch l.(type) {
	case *UDP:
		return ProtoUDP
	case *TCP:
		return ProtoTCP
	case *ICMP:
		return ProtoICMP
	case *Tunnel:
		return ProtoTunnel
	}
	return 0
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
