package capture

import (
	"encoding/binary"
	"net/netip"
)

// PacketView is a flat, copy-free read of one simulator packet: network
// addresses, the transport header fields, and the application payload.
// ParseView fills it either via direct offset reads (when the packet
// matches the well-formed shapes the simulator's builders emit) or by
// falling back to the pooled PacketDecoder, so consumers see identical
// results either way without holding a decoder across their whole
// dispatch.
//
// Field slices alias the input bytes; the caller must keep them
// immutable while reading the view.
type PacketView struct {
	Src, Dst netip.Addr
	TTL      byte

	// Transport is the decoded transport layer type (TypeUDP, TypeTCP,
	// TypeICMP, TypeTunnel) or TypeInvalid when the packet carries no
	// transport layer the simulator knows.
	Transport        LayerType
	SrcPort, DstPort uint16 // UDP, TCP
	Seq, Ack         uint32 // TCP
	TCPFlags         byte   // TCP
	ICMPType         byte   // ICMP
	ICMPCode         byte   // ICMP
	ICMPID, ICMPSeq  uint16 // ICMP
	Session          uint32 // Tunnel

	// Payload is the application payload — the innermost decoded
	// layer's payload, nil when empty (PacketDecoder.Payload semantics).
	Payload []byte

	// HasNet reports whether a network layer was decoded at all.
	HasNet bool
}

// ParseView parses pkt into *v, dispatching on the version nibble like
// the delivery path does. It returns the same error Decode would: nil
// for success, a *DecodeError for a malformed layer (in which case the
// view holds whatever decoded before the failure, mirroring the
// decoder's partial-decode contract).
func ParseView(pkt []byte, v *PacketView) error {
	if quickView(pkt, v) {
		return nil
	}
	return slowView(pkt, v)
}

// quickView is the shape fast path: fingerprint the header shape
// (version nibble, transport protocol, length fields) and read fields
// at fixed offsets. It accepts only packets every layer of which
// decodes cleanly; anything unusual returns false so the caller takes
// the full decoder pass, keeping error behavior byte-identical.
func quickView(pkt []byte, v *PacketView) bool {
	*v = PacketView{}
	if len(pkt) == 0 {
		return true // decoder loop never runs on empty input
	}
	var ipPayload []byte
	var proto IPProtocol
	switch pkt[0] >> 4 {
	case 4:
		if len(pkt) < ipv4HeaderLen {
			return false
		}
		totalLen := int(binary.BigEndian.Uint16(pkt[2:4]))
		if totalLen < ipv4HeaderLen || totalLen > len(pkt) {
			return false
		}
		v.TTL = pkt[8]
		proto = IPProtocol(pkt[9])
		v.Src, _ = netip.AddrFromSlice(pkt[12:16])
		v.Dst, _ = netip.AddrFromSlice(pkt[16:20])
		ipPayload = pkt[ipv4HeaderLen:totalLen]
	case 6:
		if len(pkt) < ipv6HeaderLen {
			return false
		}
		payloadLen := int(binary.BigEndian.Uint16(pkt[4:6]))
		if ipv6HeaderLen+payloadLen > len(pkt) {
			return false
		}
		proto = IPProtocol(pkt[6])
		v.TTL = pkt[7]
		v.Src, _ = netip.AddrFromSlice(pkt[8:24])
		v.Dst, _ = netip.AddrFromSlice(pkt[24:40])
		ipPayload = pkt[ipv6HeaderLen : ipv6HeaderLen+payloadLen]
	default:
		return false
	}
	v.HasNet = true
	if len(ipPayload) == 0 {
		return true // decoder stops at the IP layer; payload empty -> nil
	}
	switch proto {
	case ProtoUDP:
		if len(ipPayload) < udpHeaderLen {
			return false
		}
		length := int(binary.BigEndian.Uint16(ipPayload[4:6]))
		if length < udpHeaderLen || length > len(ipPayload) {
			return false
		}
		v.Transport = TypeUDP
		v.SrcPort = binary.BigEndian.Uint16(ipPayload[0:2])
		v.DstPort = binary.BigEndian.Uint16(ipPayload[2:4])
		v.Payload = ipPayload[udpHeaderLen:length]
	case ProtoTCP:
		if len(ipPayload) < tcpHeaderLen {
			return false
		}
		dataOff := int(ipPayload[12]>>4) * 4
		if dataOff < tcpHeaderLen || dataOff > len(ipPayload) {
			return false
		}
		v.Transport = TypeTCP
		v.SrcPort = binary.BigEndian.Uint16(ipPayload[0:2])
		v.DstPort = binary.BigEndian.Uint16(ipPayload[2:4])
		v.Seq = binary.BigEndian.Uint32(ipPayload[4:8])
		v.Ack = binary.BigEndian.Uint32(ipPayload[8:12])
		v.TCPFlags = ipPayload[13] & 0x1F
		v.Payload = ipPayload[dataOff:]
	case ProtoICMP, ProtoICMPv6:
		if len(ipPayload) < icmpHeaderLen {
			return false
		}
		v.Transport = TypeICMP
		v.ICMPType = ipPayload[0]
		v.ICMPCode = ipPayload[1]
		v.ICMPID = binary.BigEndian.Uint16(ipPayload[4:6])
		v.ICMPSeq = binary.BigEndian.Uint16(ipPayload[6:8])
		v.Payload = ipPayload[icmpHeaderLen:]
	case ProtoTunnel:
		if len(ipPayload) < tunnelHeaderLen || string(ipPayload[0:4]) != "VPN0" {
			return false
		}
		v.Transport = TypeTunnel
		v.Session = binary.BigEndian.Uint32(ipPayload[4:8])
		v.Payload = ipPayload[tunnelHeaderLen:]
	default:
		// Unknown protocol: the decoder stops at the IP layer and
		// reports its payload as the application payload.
		v.Payload = ipPayload
	}
	if len(v.Payload) == 0 {
		v.Payload = nil
	}
	return true
}

// slowView fills the view through the pooled decoder — the reference
// path for every packet quickView declines.
func slowView(pkt []byte, v *PacketView) error {
	*v = PacketView{}
	first := TypeIPv4
	if len(pkt) > 0 && pkt[0]>>4 == 6 {
		first = TypeIPv6
	}
	d := AcquirePacketDecoder()
	err := d.Decode(pkt, first)
	if src, dst, ok := d.Addrs(); ok {
		v.Src, v.Dst, v.HasNet = src, dst, true
		if ip4, ok := d.IPv4(); ok {
			v.TTL = ip4.TTL
		} else if ip6, ok := d.IPv6(); ok {
			v.TTL = ip6.HopLimit
		}
	}
	if u, ok := d.UDP(); ok {
		v.Transport = TypeUDP
		v.SrcPort, v.DstPort = u.SrcPort, u.DstPort
	} else if t, ok := d.TCP(); ok {
		v.Transport = TypeTCP
		v.SrcPort, v.DstPort = t.SrcPort, t.DstPort
		v.Seq, v.Ack, v.TCPFlags = t.Seq, t.Ack, t.Flags
	} else if ic, ok := d.ICMP(); ok {
		v.Transport = TypeICMP
		v.ICMPType, v.ICMPCode = ic.TypeCode, ic.Code
		v.ICMPID, v.ICMPSeq = ic.ID, ic.Seq
	} else if tn, ok := d.Tunnel(); ok {
		v.Transport = TypeTunnel
		v.Session = tn.SessionID
	}
	v.Payload = d.Payload()
	d.Release()
	return err
}
