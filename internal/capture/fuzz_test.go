package capture

import (
	"bytes"
	"testing"
	"testing/quick"

	"vpnscope/internal/simrand"
)

// Decoders face attacker-controlled bytes (leaked traffic, damaged
// captures); none of them may panic, whatever the input.

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	types := []LayerType{TypeIPv4, TypeIPv6, TypeUDP, TypeTCP, TypeICMP, TypeTunnel}
	check := func(data []byte, pick uint8) bool {
		first := types[int(pick)%len(types)]
		p := NewPacket(data, first, Default)
		// Whatever happened, the accessors must be safe.
		_ = p.Layers()
		_ = p.NetworkLayer()
		_ = p.TransportLayer()
		_ = p.ApplicationLayer()
		_ = p.ErrorLayer()
		_ = p.String()
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeMutatedValidPacketsNeverPanics(t *testing.T) {
	// Start from a valid packet and flip bytes — the nastier corpus.
	rng := simrand.New(99)
	base := buildIPv4UDP(t, []byte("payload for mutation"))
	for i := 0; i < 5000; i++ {
		data := make([]byte, len(base))
		copy(data, base)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			data[rng.Intn(len(data))] ^= byte(rng.Uint64())
		}
		p := NewPacket(data, TypeIPv4, Default)
		_ = p.Layers()
		_ = p.String()
	}
}

func TestDecodingLayerParserArbitraryBytes(t *testing.T) {
	var ip4 IPv4
	var ip6 IPv6
	var udp UDP
	var tcp TCP
	parser := NewDecodingLayerParser(TypeIPv4, &ip4, &ip6, &udp, &tcp)
	decoded := []LayerType{}
	if err := quick.Check(func(data []byte) bool {
		_ = parser.DecodeLayers(data, &decoded)
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReadPcapArbitraryBytes(t *testing.T) {
	if err := quick.Check(func(data []byte) bool {
		_, _ = ReadPcap(bytes.NewReader(data))
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
