package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one captured packet with its capture timestamp (virtual
// time) and the interface it was seen on.
type Record struct {
	Time      time.Duration // virtual time since simulation start
	Interface string
	Dir       Direction
	Data      []byte
}

// Direction marks whether the packet left or entered the interface.
type Direction byte

// Packet directions.
const (
	DirOut Direction = iota
	DirIn
)

func (d Direction) String() string {
	if d == DirIn {
		return "in"
	}
	return "out"
}

// Sink collects packet records, like a tcpdump process attached to an
// interface. It is safe for concurrent use (though an installed payload
// allocator must itself be safe for however the sink is driven) unless
// the owner switches it to unlocked mode.
type Sink struct {
	mu      sync.Mutex
	records []Record
	alloc   func(n int) []byte
	// unlocked skips the mutex on every method — set only by owners
	// that drive the sink from a single goroutine for its whole life
	// (the slot-scoped client stacks of a sequential campaign world).
	// The capture path runs once per simulated packet, where even an
	// uncontended lock is measurable.
	unlocked bool
}

// NewSink returns an empty sink.
func NewSink() *Sink { return &Sink{} }

// SetAlloc installs the allocator backing record payload copies — a
// slot arena when the records provably die with the slot (leak tests
// count them in place and nothing snapshots them out). Nil restores the
// heap, which is required whenever records outlive the sink's scope
// (pcap collection).
func (s *Sink) SetAlloc(alloc func(n int) []byte) {
	s.mu.Lock()
	s.alloc = alloc
	s.mu.Unlock()
}

// SetUnlocked switches the sink's locking mode. Unlocked is only safe
// when a single goroutine owns every interaction with the sink; call it
// before the sink sees any traffic.
func (s *Sink) SetUnlocked(unlocked bool) {
	s.mu.Lock()
	s.unlocked = unlocked
	s.mu.Unlock()
}

// Capture appends a record. The packet bytes are copied.
func (s *Sink) Capture(t time.Duration, iface string, dir Direction, data []byte) {
	if !s.unlocked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	var cp []byte
	if s.alloc != nil {
		cp = s.alloc(len(data))
	} else {
		cp = make([]byte, len(data))
	}
	copy(cp, data)
	s.records = append(s.records, Record{t, iface, dir, cp})
}

// Records returns a snapshot of all captured records in capture order.
func (s *Sink) Records() []Record {
	if !s.unlocked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Len returns the number of captured packets.
func (s *Sink) Len() int {
	if !s.unlocked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	return len(s.records)
}

// Reset discards all records.
func (s *Sink) Reset() {
	if !s.unlocked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	s.records = nil
}

// Rebase hands the sink a reusable backing array for its record list
// and returns the previous one, emptied and with its payload
// references cleared. A recycler (the simulator's slot runner) threads
// backings from retired sinks into fresh ones so per-slot captures
// stop regrowing the record list from scratch; snapshots handed out by
// Records are copies, so rebasing never invalidates them.
func (s *Sink) Rebase(backing []Record) []Record {
	if !s.unlocked {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	old := s.records
	clear(old)
	s.records = backing[:0:cap(backing)]
	return old[:0:cap(old)]
}

// Filter returns the records matching pred, in order.
func (s *Sink) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range s.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// pcap writing/reading (classic libpcap format, LINKTYPE_RAW)
// ---------------------------------------------------------------------

const (
	pcapMagic   = 0xA1B2C3D4
	linktypeRaw = 101 // raw IP: packet begins with an IPv4/IPv6 header
)

// WritePcap writes records to w in classic pcap format with the RAW
// linktype (packets start at the IP header), so traces are readable by
// standard tools.
func WritePcap(w io.Writer, records []Record) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], 2) // major
	binary.LittleEndian.PutUint16(hdr[6:8], 4) // minor
	binary.LittleEndian.PutUint32(hdr[16:20], 0xFFFF)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("capture: writing pcap header: %w", err)
	}
	rec := make([]byte, 16)
	for i, r := range records {
		sec := uint32(r.Time / time.Second)
		usec := uint32(r.Time % time.Second / time.Microsecond)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], usec)
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(r.Data)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("capture: writing record %d header: %w", i, err)
		}
		if _, err := w.Write(r.Data); err != nil {
			return fmt.Errorf("capture: writing record %d data: %w", i, err)
		}
	}
	return nil
}

// ReadPcap parses a classic pcap stream written by WritePcap. Interface
// and direction metadata are not part of the pcap format and come back
// zero-valued.
func ReadPcap(r io.Reader) ([]Record, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("capture: reading pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("capture: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	var out []Record
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("capture: reading record header: %w", err)
		}
		capLen := binary.LittleEndian.Uint32(rec[8:12])
		if capLen > 1<<20 {
			return nil, fmt.Errorf("capture: implausible record length %d", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("capture: reading record data: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:4])
		usec := binary.LittleEndian.Uint32(rec[4:8])
		out = append(out, Record{
			Time: time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Data: data,
		})
	}
}
