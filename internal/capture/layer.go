// Package capture implements the packet model of the simulator: typed
// protocol layers with real wire formats, decoding from and serialization
// to bytes, flow/endpoint abstractions, per-interface capture sinks, and
// a pcap-format trace writer.
//
// The design follows gopacket: a Packet is a decoded stack of Layers; a
// DecodingLayerParser offers an allocation-free fast path for known layer
// stacks; serialization prepends layers onto a SerializeBuffer in reverse
// order. The simulator's leakage analysis (§5.3.4, §6.5 of the paper)
// consumes captures exactly the way the paper's tooling consumed tcpdump
// output.
package capture

import (
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType int

// Known layer types. TypeTunnel is the VPN encapsulation layer: an
// opaque encrypted envelope carrying an inner packet.
const (
	TypeInvalid LayerType = iota
	TypeIPv4
	TypeIPv6
	TypeUDP
	TypeTCP
	TypeICMP
	TypeTunnel
	TypePayload

	// layerTypeCount bounds the dense layer-type enum; parser dispatch
	// tables are arrays indexed by LayerType.
	layerTypeCount
)

var layerTypeNames = map[LayerType]string{
	TypeInvalid: "Invalid",
	TypeIPv4:    "IPv4",
	TypeIPv6:    "IPv6",
	TypeUDP:     "UDP",
	TypeTCP:     "TCP",
	TypeICMP:    "ICMP",
	TypeTunnel:  "Tunnel",
	TypePayload: "Payload",
}

func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", int(t))
}

// Layer is one decoded protocol layer of a packet.
type Layer interface {
	// LayerType identifies the protocol.
	LayerType() LayerType
	// LayerContents returns the header bytes of this layer.
	LayerContents() []byte
	// LayerPayload returns the bytes this layer carries (the next
	// layer's contents plus everything after).
	LayerPayload() []byte
}

// NetworkLayer is a layer with network-level (IP) endpoints.
type NetworkLayer interface {
	Layer
	NetworkFlow() Flow
}

// TransportLayer is a layer with transport-level (port) endpoints.
type TransportLayer interface {
	Layer
	TransportFlow() Flow
}

// DecodingLayer is a layer that can decode itself from bytes in place,
// enabling the allocation-free DecodingLayerParser fast path.
type DecodingLayer interface {
	Layer
	// DecodeFromBytes parses data into the receiver, replacing prior
	// state.
	DecodeFromBytes(data []byte) error
	// NextLayerType returns the type of the layer carried in the
	// payload, or TypePayload when unknown/opaque.
	NextLayerType() LayerType
}

// SerializableLayer is a layer that can write itself to a SerializeBuffer.
type SerializableLayer interface {
	Layer
	// SerializeTo prepends the layer's wire representation onto b,
	// treating b's current contents as the payload.
	SerializeTo(b *SerializeBuffer) error
}

// DecodeError describes a failure to parse a particular layer. Decoding
// does not abort the whole packet: layers before the failure remain
// available, mirroring gopacket's ErrorLayer behavior.
type DecodeError struct {
	Type   LayerType
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("capture: cannot decode %s: %s", e.Type, e.Reason)
}

// IPProtocol numbers used inside IPv4/IPv6 headers (real IANA values).
type IPProtocol byte

const (
	ProtoICMP   IPProtocol = 1
	ProtoTCP    IPProtocol = 6
	ProtoUDP    IPProtocol = 17
	ProtoICMPv6 IPProtocol = 58
	// ProtoTunnel marks the simulator's VPN encapsulation. 99 is the
	// IANA "any private encryption scheme" protocol number.
	ProtoTunnel IPProtocol = 99
)

func (p IPProtocol) layerType() LayerType {
	switch p {
	case ProtoTCP:
		return TypeTCP
	case ProtoUDP:
		return TypeUDP
	case ProtoICMP, ProtoICMPv6:
		return TypeICMP
	case ProtoTunnel:
		return TypeTunnel
	default:
		return TypePayload
	}
}
