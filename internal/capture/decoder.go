package capture

import (
	"net/netip"
	"sync"

	"vpnscope/internal/telemetry"
)

// PacketDecoder is a reusable, allocation-free alternative to NewPacket
// for the simulator's hot delivery path. It owns one preallocated value
// of every layer type and a DecodingLayerParser wired to them; each
// Decode overwrites that scratch state in place.
//
// Decoding aliases the input bytes (the NoCopy contract): the caller
// must keep data immutable for as long as it reads layer payloads, and
// must not use the decoder's layers after Release.
type PacketDecoder struct {
	v4   IPv4
	v6   IPv6
	udp  UDP
	tcp  TCP
	icmp ICMP
	tun  Tunnel

	parser  *DecodingLayerParser
	decoded []LayerType
}

// NewPacketDecoder returns a decoder with all simulator layer types
// registered. Most callers should prefer AcquirePacketDecoder/Release.
func NewPacketDecoder() *PacketDecoder {
	d := &PacketDecoder{decoded: make([]LayerType, 0, 8)}
	d.parser = NewDecodingLayerParser(TypeIPv4,
		&d.v4, &d.v6, &d.udp, &d.tcp, &d.icmp, &d.tun)
	return d
}

var packetDecoderPool = sync.Pool{
	New: func() any {
		if t := telemetry.Active(); t != nil {
			t.M.DecoderNews.Add(1)
		}
		return NewPacketDecoder()
	},
}

// AcquirePacketDecoder returns a decoder from a process-wide pool. Pair
// with Release. Nested decodes (for example a tunnel server decoding an
// inner packet while the outer decode is still live) must each acquire
// their own decoder.
func AcquirePacketDecoder() *PacketDecoder {
	if t := telemetry.Active(); t != nil {
		t.M.DecoderGets.Add(1)
	}
	return packetDecoderPool.Get().(*PacketDecoder)
}

// Release returns d to the pool. The caller must not touch d or any
// layer pointer obtained from it afterwards; payload slices (which alias
// the input data, not the decoder) stay valid.
func (d *PacketDecoder) Release() {
	packetDecoderPool.Put(d)
}

// Decode parses data starting at layer type first, replacing all prior
// scratch state. It mirrors DecodingLayerParser semantics: a non-nil
// error only for a malformed layer; already-decoded layers remain
// readable after an error.
func (d *PacketDecoder) Decode(data []byte, first LayerType) error {
	return d.parser.DecodeLayersFrom(first, data, &d.decoded)
}

// Decoded returns the layer types decoded by the last Decode, outermost
// first. The slice is owned by the decoder.
func (d *PacketDecoder) Decoded() []LayerType { return d.decoded }

// Layer returns the decoder's layer value for t if the last Decode
// produced it, else nil.
func (d *PacketDecoder) Layer(t LayerType) Layer {
	for _, dt := range d.decoded {
		if dt == t {
			return d.layerOf(t)
		}
	}
	return nil
}

func (d *PacketDecoder) layerOf(t LayerType) Layer {
	switch t {
	case TypeIPv4:
		return &d.v4
	case TypeIPv6:
		return &d.v6
	case TypeUDP:
		return &d.udp
	case TypeTCP:
		return &d.tcp
	case TypeICMP:
		return &d.icmp
	case TypeTunnel:
		return &d.tun
	default:
		return nil
	}
}

// IPv4, IPv6, UDP, TCP, ICMP, Tunnel return the decoder's scratch layer
// of that type when the last Decode produced it. Second result reports
// presence.
func (d *PacketDecoder) IPv4() (*IPv4, bool)     { l := d.Layer(TypeIPv4); return &d.v4, l != nil }
func (d *PacketDecoder) IPv6() (*IPv6, bool)     { l := d.Layer(TypeIPv6); return &d.v6, l != nil }
func (d *PacketDecoder) UDP() (*UDP, bool)       { l := d.Layer(TypeUDP); return &d.udp, l != nil }
func (d *PacketDecoder) TCP() (*TCP, bool)       { l := d.Layer(TypeTCP); return &d.tcp, l != nil }
func (d *PacketDecoder) ICMP() (*ICMP, bool)     { l := d.Layer(TypeICMP); return &d.icmp, l != nil }
func (d *PacketDecoder) Tunnel() (*Tunnel, bool) { l := d.Layer(TypeTunnel); return &d.tun, l != nil }

// NetworkLayer returns the decoded network layer, or nil.
func (d *PacketDecoder) NetworkLayer() NetworkLayer {
	for _, dt := range d.decoded {
		switch dt {
		case TypeIPv4:
			return &d.v4
		case TypeIPv6:
			return &d.v6
		}
	}
	return nil
}

// Addrs returns the network-layer source and destination addresses
// without allocating (unlike NetworkFlow, which materializes byte
// slices). ok is false when no network layer was decoded.
func (d *PacketDecoder) Addrs() (src, dst netip.Addr, ok bool) {
	for _, dt := range d.decoded {
		switch dt {
		case TypeIPv4:
			return d.v4.Src, d.v4.Dst, true
		case TypeIPv6:
			return d.v6.Src, d.v6.Dst, true
		}
	}
	return netip.Addr{}, netip.Addr{}, false
}

// Payload returns the application payload: the innermost decoded layer's
// payload, matching Packet.ApplicationLayer for well-formed packets. It
// returns nil when empty so callers can keep nil-checking.
func (d *PacketDecoder) Payload() []byte {
	n := len(d.decoded)
	if n == 0 {
		return nil
	}
	p := d.layerOf(d.decoded[n-1]).LayerPayload()
	if len(p) == 0 {
		return nil
	}
	return p
}
