package capture

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"vpnscope/internal/telemetry"
)

// Packet is a decoded stack of layers over a single buffer of packet
// data. Construct with NewPacket. Decoding failures do not abort the
// packet: successfully decoded layers remain available and ErrorLayer
// reports the failure, mirroring gopacket.
type Packet struct {
	data   []byte
	layers []Layer
	err    *DecodeError
}

// DecodeOptions controls NewPacket.
type DecodeOptions struct {
	// NoCopy uses the caller's slice directly instead of copying. Only
	// safe when the caller guarantees the bytes stay immutable.
	NoCopy bool
}

// Default and NoCopy are the common option sets.
var (
	Default = DecodeOptions{}
	NoCopy  = DecodeOptions{NoCopy: true}
)

// NewPacket decodes data, starting at layer type first.
func NewPacket(data []byte, first LayerType, opts DecodeOptions) *Packet {
	p := &Packet{}
	if opts.NoCopy {
		p.data = data
	} else {
		p.data = bytes.Clone(data)
	}
	rest := p.data
	next := first
	for len(rest) > 0 && next != TypePayload && next != TypeInvalid {
		layer := newLayerOf(next)
		if layer == nil {
			break
		}
		if err := layer.DecodeFromBytes(rest); err != nil {
			if de, ok := err.(*DecodeError); ok {
				p.err = de
			} else {
				p.err = &DecodeError{next, err.Error()}
			}
			return p
		}
		p.layers = append(p.layers, layer)
		rest = layer.LayerPayload()
		next = layer.NextLayerType()
	}
	if len(rest) > 0 {
		p.layers = append(p.layers, Payload(rest))
	}
	return p
}

func newLayerOf(t LayerType) DecodingLayer {
	switch t {
	case TypeIPv4:
		return &IPv4{}
	case TypeIPv6:
		return &IPv6{}
	case TypeUDP:
		return &UDP{}
	case TypeTCP:
		return &TCP{}
	case TypeICMP:
		return &ICMP{}
	case TypeTunnel:
		return &Tunnel{}
	default:
		return nil
	}
}

// Data returns the raw bytes underlying the packet.
func (p *Packet) Data() []byte { return p.data }

// Layers returns all decoded layers, outermost first.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of type t, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// NetworkLayer returns the first network-level layer (IPv4 or IPv6).
func (p *Packet) NetworkLayer() NetworkLayer {
	for _, l := range p.layers {
		if nl, ok := l.(NetworkLayer); ok {
			return nl
		}
	}
	return nil
}

// TransportLayer returns the first transport-level layer (TCP or UDP).
func (p *Packet) TransportLayer() TransportLayer {
	for _, l := range p.layers {
		if tl, ok := l.(TransportLayer); ok {
			return tl
		}
	}
	return nil
}

// ApplicationLayer returns the trailing Payload layer, or nil.
func (p *Packet) ApplicationLayer() Payload {
	for _, l := range p.layers {
		if pl, ok := l.(Payload); ok {
			return pl
		}
	}
	return nil
}

// ErrorLayer returns the decode error encountered, if any.
func (p *Packet) ErrorLayer() *DecodeError { return p.err }

// String renders the layer stack for debugging.
func (p *Packet) String() string {
	var b strings.Builder
	for i, l := range p.layers {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(l.LayerType().String())
	}
	if p.err != nil {
		fmt.Fprintf(&b, "/!%s", p.err.Type)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Flow / Endpoint
// ---------------------------------------------------------------------

// EndpointKind distinguishes the address family of a Flow's endpoints.
type EndpointKind byte

// Endpoint kinds.
const (
	EndpointIP EndpointKind = iota + 1
	EndpointUDPPort
	EndpointTCPPort
)

// Flow is a (src, dst) endpoint pair at one layer of a packet.
type Flow struct {
	Kind     EndpointKind
	src, dst []byte
}

// NewFlow builds a flow from raw endpoint bytes.
func NewFlow(kind EndpointKind, src, dst []byte) Flow {
	return Flow{kind, bytes.Clone(src), bytes.Clone(dst)}
}

// Src and Dst return the endpoint byte strings.
func (f Flow) Src() []byte { return f.src }
func (f Flow) Dst() []byte { return f.dst }

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{f.Kind, f.dst, f.src} }

// Key returns a map key for the directed flow.
func (f Flow) Key() string {
	return string(f.Kind) + string(f.src) + ">" + string(f.dst)
}

// FastHash returns a symmetric hash: A->B and B->A collide, so
// bidirectional traffic lands in the same bucket.
func (f Flow) FastHash() uint64 {
	return hashBytes(f.src) ^ hashBytes(f.dst) ^ uint64(f.Kind)<<56
}

func hashBytes(b []byte) uint64 {
	var h uint64 = 0xCBF29CE484222325
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001B3
	}
	return h
}

// ---------------------------------------------------------------------
// DecodingLayerParser — the allocation-free fast path
// ---------------------------------------------------------------------

// DecodingLayerParser decodes packet data into caller-owned, preallocated
// layers. It handles only the layer types registered with it; decoding
// stops (without error) at the first unregistered type, whose identity is
// reported through the decoded slice semantics below.
type DecodingLayerParser struct {
	first LayerType
	// layers is a dense dispatch table indexed by LayerType — the enum
	// is small and fixed, so registration and per-layer lookup are
	// array indexing instead of map hashing, and construction allocates
	// nothing beyond the parser itself.
	layers [layerTypeCount]DecodingLayer
}

// NewDecodingLayerParser registers decoders for the given layers; each
// DecodeLayers call writes into those same layer values.
func NewDecodingLayerParser(first LayerType, layers ...DecodingLayer) *DecodingLayerParser {
	p := &DecodingLayerParser{first: first}
	for _, l := range layers {
		if t := l.LayerType(); t >= 0 && t < layerTypeCount {
			p.layers[t] = l
		}
	}
	return p
}

// DecodeLayers decodes data, appending the types decoded into *decoded
// (which is truncated first). It returns a non-nil error only on a
// malformed layer; running out of registered decoders is not an error.
func (p *DecodingLayerParser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	return p.DecodeLayersFrom(p.first, data, decoded)
}

// DecodeLayersFrom is DecodeLayers with an explicit first layer type,
// letting one parser (and its registered scratch layers) serve packets
// of different families — the reuse pattern the simulator's fast path
// depends on.
func (p *DecodingLayerParser) DecodeLayersFrom(first LayerType, data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	rest := data
	next := first
	for len(rest) > 0 {
		if next < 0 || next >= layerTypeCount {
			return nil
		}
		layer := p.layers[next]
		if layer == nil {
			return nil
		}
		if err := layer.DecodeFromBytes(rest); err != nil {
			return err
		}
		*decoded = append(*decoded, next)
		rest = layer.LayerPayload()
		next = layer.NextLayerType()
	}
	return nil
}

// ---------------------------------------------------------------------
// SerializeBuffer
// ---------------------------------------------------------------------

// SerializeBuffer accumulates packet bytes by prepending: serialize the
// innermost layer first and wrap outward, as gopacket does.
type SerializeBuffer struct {
	buf   []byte
	start int

	// HdrV4/HdrV6 are network-header scratch for packet builders: a
	// pooled buffer carries its header scratch with it instead of
	// paying a second pool round-trip per packet. Valid only inside a
	// single build — nested builds hold distinct buffers.
	HdrV4 IPv4
	HdrV6 IPv6
}

// NewSerializeBuffer returns an empty buffer.
func NewSerializeBuffer() *SerializeBuffer {
	const initial = 256
	return &SerializeBuffer{buf: make([]byte, initial), start: initial}
}

// Bytes returns the current contents.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Prepend grows the front of the buffer by n bytes and returns the new
// zeroed front region.
func (b *SerializeBuffer) Prepend(n int) []byte {
	if n > b.start {
		grown := make([]byte, n+len(b.buf)*2)
		newStart := len(grown) - len(b.Bytes()) - n
		copy(grown[newStart+n:], b.Bytes())
		b.buf = grown
		b.start = newStart
	} else {
		b.start -= n
	}
	front := b.buf[b.start : b.start+n]
	for i := range front {
		front[i] = 0
	}
	return front
}

// Clear resets the buffer to empty.
func (b *SerializeBuffer) Clear() { b.start = len(b.buf) }

// Reserve clears the buffer and returns a writable region of exactly n
// bytes that becomes the buffer's whole contents. Unlike Prepend it does
// not zero the region — the caller must overwrite every byte. This is
// the entry point for prototype patching, where the full packet image is
// copied in anyway.
func (b *SerializeBuffer) Reserve(n int) []byte {
	if n > len(b.buf) {
		b.buf = make([]byte, n+len(b.buf)*2)
	}
	b.start = len(b.buf) - n
	return b.buf[b.start:]
}

var serializeBufferPool = sync.Pool{
	New: func() any {
		if t := telemetry.Active(); t != nil {
			t.M.SerializeBufferNews.Add(1)
		}
		return NewSerializeBuffer()
	},
}

// GetSerializeBuffer returns a cleared buffer from a process-wide pool.
// Pair it with Release once every slice obtained from Bytes() is either
// copied or dead; the pool reuses the backing array.
func GetSerializeBuffer() *SerializeBuffer {
	if t := telemetry.Active(); t != nil {
		t.M.SerializeBufferGets.Add(1)
	}
	b := serializeBufferPool.Get().(*SerializeBuffer)
	b.Clear()
	return b
}

// Release returns b to the pool. The caller must not touch b — or any
// slice previously returned by b.Bytes() or b.Prepend() — afterwards.
func (b *SerializeBuffer) Release() {
	serializeBufferPool.Put(b)
}

// SerializeLayers clears b and serializes the given layers outermost
// first (it walks them in reverse so each layer sees its payload).
func SerializeLayers(b *SerializeBuffer, layers ...SerializableLayer) error {
	b.Clear()
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return err
		}
	}
	return nil
}
