// Package profiling wires the standard -cpuprofile/-memprofile flags —
// plus -blockprofile/-mutexprofile for scheduler-contention diagnosis —
// into the campaign CLIs, so hot-path regressions can be diagnosed with
// `go tool pprof` against a real full-study run rather than a
// microbenchmark. See DESIGN.md ("Performance model") for the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Config names the profile output paths. Empty paths disable the
// corresponding profile.
type Config struct {
	CPUProfile string
	MemProfile string
	// BlockProfile and MutexProfile capture goroutine blocking and
	// mutex contention over the whole run (rate/fraction 1 — full
	// sampling; these runs are for diagnosis, not production). Useful
	// alongside the telemetry steal/commit-wait counters: the counters
	// say the executor stalled, the profiles say on which lock.
	BlockProfile string
	MutexProfile string
}

// Start begins CPU profiling (if CPUProfile is set) and enables block/
// mutex sampling (if their paths are set). The returned stop function
// ends the CPU profile, writes the block, mutex, and allocation
// profiles, and restores the sampling rates; it is safe to call exactly
// once. Every path may be empty.
func Start(cfg Config) (stop func(), err error) {
	var cpuFile *os.File
	if cfg.CPUProfile != "" {
		cpuFile, err = os.Create(cfg.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if cfg.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if cfg.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if cfg.BlockProfile != "" {
			writeProfile("block", cfg.BlockProfile)
			runtime.SetBlockProfileRate(0)
		}
		if cfg.MutexProfile != "" {
			writeProfile("mutex", cfg.MutexProfile)
			runtime.SetMutexProfileFraction(0)
		}
		if cfg.MemProfile != "" {
			// Materialize up-to-date allocation stats before snapshotting.
			runtime.GC()
			writeProfile("allocs", cfg.MemProfile)
		}
	}, nil
}

// writeProfile snapshots a named runtime profile to path, reporting
// (not propagating) errors: a failed diagnostic write must not fail the
// campaign whose results are already in hand.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
	}
}
