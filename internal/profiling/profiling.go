// Package profiling wires the standard -cpuprofile/-memprofile flags
// into the campaign CLIs so hot-path regressions can be diagnosed with
// `go tool pprof` against a real full-study run rather than a
// microbenchmark. See DESIGN.md ("Performance model") for the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (if cpuPath is non-empty) and returns a
// stop function that ends the CPU profile and writes the allocation
// profile (if memPath is non-empty). Either path may be empty; the
// returned stop function is always safe to call exactly once.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			defer f.Close()
			// Materialize up-to-date allocation stats before snapshotting.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
		}
	}, nil
}
