package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "Test Table", []string{"Name", "Count"}, [][]string{
		{"short", "1"},
		{"much-longer-name", "22"},
	})
	out := buf.String()
	if !strings.Contains(out, "Test Table") {
		t.Error("missing title")
	}
	lines := strings.Split(out, "\n")
	// Header and rows align: "Count" column starts at the same offset.
	var headerIdx, rowIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "Name") {
			headerIdx = i
		}
		if strings.HasPrefix(l, "much-longer-name") {
			rowIdx = i
		}
	}
	hCol := strings.Index(lines[headerIdx], "Count")
	rCol := strings.Index(lines[rowIdx], "22")
	if hCol != rCol {
		t.Errorf("columns misaligned: header at %d, row at %d\n%s", hCol, rCol, out)
	}
}

func TestTableHandlesShortRows(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "", []string{"A", "B", "C"}, [][]string{{"x"}})
	if !strings.Contains(buf.String(), "x") {
		t.Error("short row dropped")
	}
}

func TestBar(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "Methods", []BarEntry{{"Bitcoin", 90}, {"ETH", 30}}, 30)
	out := buf.String()
	btc := strings.Count(lineWith(out, "Bitcoin"), "#")
	eth := strings.Count(lineWith(out, "ETH"), "#")
	if btc != 30 {
		t.Errorf("max bar = %d, want full width 30", btc)
	}
	if eth != 10 {
		t.Errorf("scaled bar = %d, want 10", eth)
	}
}

func TestBarZeroValues(t *testing.T) {
	var buf bytes.Buffer
	Bar(&buf, "", []BarEntry{{"none", 0}}, 10)
	if !strings.Contains(buf.String(), "none") {
		t.Error("zero bar missing label")
	}
}

func lineWith(out, substr string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return ""
}

func TestCDF(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{10, 20, 750, 4000}
	ps := []float64{0.25, 0.5, 0.8, 1.0}
	CDF(&buf, "Server Counts", xs, ps, "servers")
	out := buf.String()
	if !strings.Contains(out, "750") || !strings.Contains(out, "0.80") {
		t.Errorf("CDF rows missing:\n%s", out)
	}
	if !strings.Contains(out, "4000") {
		t.Errorf("final value missing:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	var buf bytes.Buffer
	Series(&buf, "Fig 9", []LabeledSeries{
		{"VP-A", []float64{10, 50, 200}},
		{"VP-B", nil}, // skipped
	})
	out := buf.String()
	if !strings.Contains(out, "min    10.0") {
		t.Errorf("min missing:\n%s", out)
	}
	if strings.Contains(out, "VP-B") {
		t.Error("empty series should be skipped")
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 10)
	if len(s) != 10 {
		t.Fatalf("width = %d", len(s))
	}
	if s[0] != '0' || s[9] != '9' {
		t.Errorf("sparkline = %q, want 0..9 ramp", s)
	}
	if sparkline(nil, 5) != "" {
		t.Error("empty input should render empty")
	}
	// Flat series renders all zeros, no divide-by-zero.
	flat := sparkline([]float64{5, 5, 5}, 3)
	if flat != "000" {
		t.Errorf("flat = %q", flat)
	}
}

func TestWorldMap(t *testing.T) {
	var buf bytes.Buffer
	WorldMap(&buf, "Business Locations", map[string]int{"US": 24, "GB": 12, "DE": 6})
	out := buf.String()
	usIdx := strings.Index(out, "US")
	gbIdx := strings.Index(out, "GB")
	if usIdx < 0 || gbIdx < 0 || usIdx > gbIdx {
		t.Errorf("countries not sorted by count:\n%s", out)
	}
}
