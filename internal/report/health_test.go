package report

import (
	"bytes"
	"strings"
	"testing"

	"vpnscope/internal/study"
	"vpnscope/internal/vpntest"
)

func healthResult() *study.Result {
	return &study.Result{
		VPsAttempted: 6,
		Reports: []*vpntest.VPReport{
			{Provider: "GhostNet", VPLabel: "ghostnet-1 (US)"},
			{Provider: "GhostNet", VPLabel: "ghostnet-2 (DE)", Errors: []string{"tls: handshake refused", "webrtc-leak: timeout"}},
			{Provider: "DeadNet", VPLabel: "deadnet-1 (FR)"},
		},
		ConnectFailures: []study.ConnectFailure{
			{Provider: "DeadNet", VPLabel: "deadnet-2 (JP)", Err: "refused", Attempts: 3},
		},
		Recoveries: []study.Recovery{
			{Provider: "GhostNet", VPLabel: "ghostnet-2 (DE)", Attempts: 2},
		},
		Quarantines: []study.Quarantine{
			{Provider: "DeadNet", TrippedAfter: 1, SkippedVPs: []string{"deadnet-3 (BR)", "deadnet-4 (AU)"}},
		},
	}
}

func TestCollectionHealth(t *testing.T) {
	rows := CollectionHealth(healthResult())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 providers", len(rows))
	}
	dead, ghost := rows[0], rows[1]
	if dead.Provider != "DeadNet" || ghost.Provider != "GhostNet" {
		t.Fatalf("rows out of order: %+v", rows)
	}
	if dead.Attempted != 4 || dead.Measured != 1 || dead.Failed != 1 || dead.Quarantined != 2 {
		t.Errorf("DeadNet row = %+v", dead)
	}
	if ghost.Attempted != 2 || ghost.Measured != 2 || ghost.Retried != 1 || ghost.TestErrors != 2 {
		t.Errorf("GhostNet row = %+v", ghost)
	}
	// Health rows account for every attempted vantage point — the
	// zero-silent-drops invariant, visible in the report layer.
	total := 0
	for _, r := range rows {
		total += r.Attempted
	}
	if total != 6 {
		t.Errorf("rows cover %d attempts, campaign made 6", total)
	}
}

// TestWriteCollectionHealthEmptyCampaign: a result with nothing
// attempted (a checkpoint taken before the first vantage point) must
// render "n/a" rather than divide by zero.
func TestWriteCollectionHealthEmptyCampaign(t *testing.T) {
	var buf bytes.Buffer
	WriteCollectionHealth(&buf, &study.Result{})
	out := buf.String()
	if !strings.Contains(out, "campaign: 0/0 vantage points measured (n/a)") {
		t.Errorf("empty campaign summary = %q, want n/a rendering", out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("empty campaign summary leaked a NaN: %q", out)
	}
}

func TestWriteCollectionHealth(t *testing.T) {
	var buf bytes.Buffer
	WriteCollectionHealth(&buf, healthResult())
	out := buf.String()
	for _, want := range []string{
		"Collection health",
		"GhostNet", "DeadNet",
		"quarantined",
		"campaign: 3/6 vantage points measured (50.0%, 1 retried, 1 failed, 2 quarantined)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
