package report

import (
	"fmt"
	"io"
	"sort"

	"vpnscope/internal/telemetry"
)

// WriteTelemetrySummary renders a telemetry snapshot as the campaign
// telemetry section of the collection-health report: the deterministic
// campaign counters first, then the execution-shape and wall-clock
// diagnostics. The full machine-readable snapshot is what `-metrics`
// writes; this is the human summary embedded alongside the health
// tables.
func WriteTelemetrySummary(w io.Writer, s *telemetry.Snapshot) {
	c, r := s.Campaign, s.Runtime
	rows := [][]string{
		{"Slots done / total", fmt.Sprintf("%d / %d", c.SlotsDone, c.SlotsTotal)},
		{"Committed / resumed / quarantine-skipped", fmt.Sprintf("%d / %d / %d", c.SlotsCommitted, c.SlotsResumed, c.QuarantineSkipped)},
		{"Reports / connect failures / recoveries", fmt.Sprintf("%d / %d / %d", c.Reports, c.ConnectFailures, c.Recoveries)},
		{"Quarantine trips", fmt.Sprint(c.QuarantineTrips)},
		{"Faults absorbed (committed slots)", fmt.Sprint(total(c.Faults))},
		{"Checkpoints written", fmt.Sprintf("%d (%s)", c.Checkpoints, sizeOf(c.CheckpointBytes))},
		{"Suite virtual time (mean)", meanOf(c.SuiteVirtual)},
	}
	Table(w, fmt.Sprintf("Campaign telemetry (%s)", s.Schema), []string{"Metric", "Value"}, rows)

	if len(c.TestVirtual) > 0 {
		names := make([]string, 0, len(c.TestVirtual))
		for name := range c.TestVirtual {
			names = append(names, name)
		}
		sort.Strings(names)
		var testRows [][]string
		for _, name := range names {
			h := c.TestVirtual[name]
			testRows = append(testRows, []string{name, fmt.Sprint(h.Count), meanOf(h)})
		}
		Table(w, "Per-test virtual time (committed slots)",
			[]string{"Test", "Runs", "Mean"}, testRows)
	}

	runtimeRows := [][]string{
		{"Packet exchanges", fmt.Sprint(r.Exchanges)},
		{"Faults injected (raw, incl. speculative)", fmt.Sprint(total(r.FaultsRaw))},
		{"Slots measured / speculative discards", fmt.Sprintf("%d / %d", r.SlotsMeasured, r.SpeculativeDiscards)},
		{"Worker worlds built", fmt.Sprint(r.WorkerWorldBuilds)},
		{"Steals / victim scans / rescans", fmt.Sprintf("%d / %d / %d", r.Steals, r.VictimScans, r.StealRescans)},
		{"Serialize-buffer pool hit rate", hitRate(r.SerializeBufferGets, r.SerializeBufferNews)},
		{"Decoder pool hit rate", hitRate(r.DecoderGets, r.DecoderNews)},
		{"Wall elapsed", fmt.Sprintf("%.0f ms", s.Wall.ElapsedMs)},
		{"Committer wait", fmt.Sprintf("%.0f ms", s.Wall.CommitWaitMs)},
	}
	Table(w, "Execution diagnostics (non-deterministic)", []string{"Metric", "Value"}, runtimeRows)
}

func total(f telemetry.FaultCounts) int64 {
	return f.Dropped + f.Flapped + f.Refused + f.Delayed + f.Blackouts + f.TunnelResets
}

func meanOf(h telemetry.HistogramSnapshot) string {
	if h.Count == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f ms", h.SumMs/float64(h.Count))
}

func hitRate(gets, news int64) string {
	if gets == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%% (%d gets, %d misses)", 100*float64(gets-news)/float64(gets), gets, news)
}

func sizeOf(bytes int64) string {
	switch {
	case bytes >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(bytes)/(1<<20))
	case bytes >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(bytes)/(1<<10))
	default:
		return fmt.Sprintf("%d B", bytes)
	}
}
