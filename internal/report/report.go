// Package report renders the study's tables and figures as aligned text,
// in the spirit of the paper's tables (Table 1-7) and figures (1-9). The
// renderers are deliberately plain: every artifact regenerates on stdout
// so paper-vs-measured comparisons in EXPERIMENTS.md are one diff away.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table writes an aligned text table with a title, header row, and rows.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(title)))
	}
	fmt.Fprintln(w, line(headers))
	total := len(headers)*2 - 2
	for _, width := range widths {
		total += width
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range rows {
		fmt.Fprintln(w, line(row))
	}
	fmt.Fprintln(w)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Bar renders a horizontal bar chart (Figure 4/5 style): one labeled bar
// per entry, scaled to maxWidth columns.
func Bar(w io.Writer, title string, entries []BarEntry, maxWidth int) {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	max := 0
	labelW := 0
	for _, e := range entries {
		if e.Value > max {
			max = e.Value
		}
		if len(e.Label) > labelW {
			labelW = len(e.Label)
		}
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	for _, e := range entries {
		n := 0
		if max > 0 {
			n = e.Value * maxWidth / max
		}
		fmt.Fprintf(w, "%s  %s %d\n", pad(e.Label, labelW), strings.Repeat("#", n), e.Value)
	}
	fmt.Fprintln(w)
}

// BarEntry is one bar of a Bar chart.
type BarEntry struct {
	Label string
	Value int
}

// CDF renders an empirical CDF (Figure 2 style) as a fixed set of
// quantile rows.
func CDF(w io.Writer, title string, xs, ps []float64, xLabel string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	fmt.Fprintf(w, "%-12s  P(X<=x)\n", xLabel)
	// Sample the curve at deciles of probability.
	targets := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	j := 0
	for _, t := range targets {
		for j < len(ps)-1 && ps[j] < t {
			j++
		}
		fmt.Fprintf(w, "%-12.0f  %.2f\n", xs[j], ps[j])
	}
	fmt.Fprintln(w)
}

// Series renders Figure 9-style sorted-RTT series: one row per series
// with min/median/max plus a compact sparkline.
func Series(w io.Writer, title string, series []LabeledSeries) {
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	labelW := 0
	for _, s := range series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for _, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		sorted := append([]float64(nil), s.Values...)
		sort.Float64s(sorted)
		min := sorted[0]
		med := sorted[len(sorted)/2]
		max := sorted[len(sorted)-1]
		fmt.Fprintf(w, "%s  min %7.1f  med %7.1f  max %7.1f  %s\n",
			pad(s.Label, labelW), min, med, max, sparkline(sorted, 24))
	}
	fmt.Fprintln(w)
}

// LabeledSeries is one line of a Series chart.
type LabeledSeries struct {
	Label  string
	Values []float64
}

// sparkline compresses a sorted series into width buckets of 0-9 glyphs.
func sparkline(sorted []float64, width int) string {
	if len(sorted) == 0 || width <= 0 {
		return ""
	}
	min, max := sorted[0], sorted[len(sorted)-1]
	span := max - min
	glyphs := []byte("0123456789")
	var b strings.Builder
	for i := 0; i < width; i++ {
		idx := i * len(sorted) / width
		v := sorted[idx]
		g := 0
		if span > 0 {
			g = int((v - min) / span * 9)
		}
		b.WriteByte(glyphs[g])
	}
	return b.String()
}

// WorldMap renders a country histogram (Figure 1/3 style) as sorted
// country rows — the textual equivalent of the paper's heat maps.
func WorldMap(w io.Writer, title string, counts map[string]int) {
	type row struct {
		c string
		n int
	}
	rows := make([]row, 0, len(counts))
	for c, n := range counts {
		rows = append(rows, row{c, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].c < rows[j].c
	})
	entries := make([]BarEntry, len(rows))
	for i, r := range rows {
		entries[i] = BarEntry{Label: r.c, Value: r.n}
	}
	Bar(w, title, entries, 40)
}
