package report

import (
	"fmt"
	"io"
	"sort"

	"vpnscope/internal/study"
)

// HealthRow summarizes one provider's collection health: how many
// vantage points the campaign attempted, how many yielded a full
// report, and where the rest went. The paper's §5.2 collection was
// dominated by exactly this attrition — dead endpoints, failed
// connections, partial re-collections — so the runner surfaces it
// per provider instead of letting failed vantage points vanish.
type HealthRow struct {
	Provider    string
	Attempted   int // vantage points the runner reached
	Measured    int // full suite reports collected
	Retried     int // vantage points that needed more than one connect attempt
	Failed      int // connect failures after the full retry budget
	Quarantined int // vantage points skipped by the circuit breaker
	TestErrors  int // non-fatal per-test errors across this provider's reports
}

// CollectionHealth aggregates a campaign result into per-provider
// health rows, sorted by provider name.
func CollectionHealth(res *study.Result) []HealthRow {
	byName := map[string]*HealthRow{}
	row := func(name string) *HealthRow {
		r, ok := byName[name]
		if !ok {
			r = &HealthRow{Provider: name}
			byName[name] = r
		}
		return r
	}
	for _, rep := range res.Reports {
		r := row(rep.Provider)
		r.Attempted++
		r.Measured++
		r.TestErrors += len(rep.Errors)
	}
	for _, f := range res.ConnectFailures {
		r := row(f.Provider)
		r.Attempted++
		r.Failed++
	}
	for _, rec := range res.Recoveries {
		row(rec.Provider).Retried++
	}
	for _, q := range res.Quarantines {
		r := row(q.Provider)
		r.Attempted += len(q.SkippedVPs)
		r.Quarantined += len(q.SkippedVPs)
	}
	out := make([]HealthRow, 0, len(byName))
	for _, r := range byName {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// WriteCollectionHealth renders the collection-health table, plus a
// campaign-wide summary line.
func WriteCollectionHealth(w io.Writer, res *study.Result) {
	rows := CollectionHealth(res)
	cells := make([][]string, 0, len(rows))
	var attempted, measured, retried, failed, quarantined int
	for _, r := range rows {
		attempted += r.Attempted
		measured += r.Measured
		retried += r.Retried
		failed += r.Failed
		quarantined += r.Quarantined
		cells = append(cells, []string{
			r.Provider,
			fmt.Sprint(r.Attempted),
			fmt.Sprint(r.Measured),
			fmt.Sprint(r.Retried),
			fmt.Sprint(r.Failed),
			fmt.Sprint(r.Quarantined),
			fmt.Sprint(r.TestErrors),
		})
	}
	Table(w, "Collection health (per provider)",
		[]string{"provider", "attempted", "measured", "retried", "failed", "quarantined", "test errors"},
		cells)
	if attempted == 0 {
		// An empty campaign (nothing attempted yet — e.g. a checkpoint
		// taken before the first vantage point) has no measurement rate.
		fmt.Fprintf(w, "campaign: 0/0 vantage points measured (n/a)\n")
		return
	}
	fmt.Fprintf(w, "campaign: %d/%d vantage points measured (%.1f%%, %d retried, %d failed, %d quarantined)\n",
		measured, attempted, 100*float64(measured)/float64(attempted), retried, failed, quarantined)
}
