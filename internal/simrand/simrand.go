// Package simrand provides a small, deterministic pseudo-random number
// generator used throughout the simulator.
//
// Every stochastic decision in vpnscope — geo-database error models,
// latency jitter, catalog field synthesis — flows from a Source seeded
// explicitly by the caller, so a whole simulated study reproduces
// bit-for-bit. The generator is a SplitMix64 core feeding a xorshift-style
// mixer; it is not cryptographically secure and is not meant to be.
//
// The package deliberately mirrors a subset of math/rand's method set so
// call sites read idiomatically, but unlike math/rand there is no global
// source: determinism requires explicit plumbing.
package simrand

import "math"

// Source is a deterministic PRNG. The zero value is NOT valid; construct
// with New. A Source is not safe for concurrent use; derive independent
// streams with Fork instead of sharing.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Two Sources with the same seed
// produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed + 0x9E3779B97F4A7C15}
}

// Fork derives an independent child stream labeled by name. Forking the
// same parent seed with the same label always yields the same child, so
// subsystems can be added or reordered without perturbing each other's
// streams.
func (s *Source) Fork(label string) *Source {
	h := s.state
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001B3
	}
	return New(h)
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int64 returns a non-negative random int64.
func (s *Source) Int64() int64 {
	return int64(s.Uint64() >> 1)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("simrand: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Marsaglia polar method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Source) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element of items. It panics on an empty
// slice, matching Intn's contract.
func Pick[T any](s *Source, items []T) T {
	return items[s.Intn(len(items))]
}

// Weighted returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero;
// if all weights are zero it returns 0.
func (s *Source) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := s.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}
