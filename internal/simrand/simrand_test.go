package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork("geo")
	c2 := parent.Fork("dns")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked streams with different labels should differ")
	}
	// Same label from a fresh parent with same seed reproduces the child.
	p2 := New(7)
	c3 := p2.Fork("geo")
	c4 := New(7).Fork("geo")
	if c3.Uint64() != c4.Uint64() {
		t.Fatal("fork is not deterministic")
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a, b := New(99), New(99)
	a.Fork("x")
	a.Fork("y")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork must not consume parent state")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d: got %d, want ~%d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("mean = %v, want ~1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(21)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("P(true) = %v, want ~0.3", p)
	}
	if s.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) must be true")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestWeighted(t *testing.T) {
	s := New(31)
	const n = 100000
	counts := [3]int{}
	for i := 0; i < n; i++ {
		counts[s.Weighted([]float64{1, 2, 1})]++
	}
	// Expect roughly 25% / 50% / 25%.
	if p := float64(counts[1]) / n; math.Abs(p-0.5) > 0.02 {
		t.Errorf("middle bucket %v, want ~0.5", p)
	}
	// Degenerate cases.
	if s.Weighted([]float64{0, 0}) != 0 {
		t.Error("all-zero weights should return 0")
	}
	if s.Weighted([]float64{-1, 5}) != 1 {
		t.Error("negative weights should be skipped")
	}
}

func TestPick(t *testing.T) {
	s := New(37)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(s, items)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick over 100 draws hit %d/3 items", len(seen))
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}
