# Convenience targets; the authoritative tier-1 line lives in ROADMAP.md.

.PHONY: build test race tier1 bench benchcheck loadtest

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./internal/study/... ./internal/faultsim/... ./internal/netsim/... ./internal/results/...

# tier1 is the full verification gate: build, vet, tests, race subset
# (the study wildcard covers internal/study/slotsched and the sharded
# outcome log in internal/results/shardlog), the telemetry sink race
# suite, the flight-recorder ring race suite, the daemon race suite
# (admission, drain, kill -9 chaos, panic/stall flight dumps), study
# bench smoke, the alloc-gated fast-path, prototype-patch,
# checkpoint-merge, and shard-log benches, and the poisoned-arena
# prototype retention suite.
tier1: build
	go vet ./...
	go test ./...
	$(MAKE) race
	go test -race ./internal/telemetry/...
	go test -race ./internal/flightrec/...
	go test -race ./internal/server/...
	go test -bench Study -benchtime 1x -run '^$$' .
	go test -bench 'Exchange|BuildPacket|Deliver|PrototypePatch' -benchtime 1x -run '^$$' ./internal/netsim
	go test -bench 'CheckpointMerge' -benchtime 1x -run '^$$' ./internal/study
	go test -bench 'ShardedOutcomes' -benchtime 1x -run '^$$' ./internal/results/shardlog
	go test -tags arenadebug -run 'Prototype' ./internal/netsim

# bench runs the full-study benchmarks and appends the numbers to the
# BENCH_*.json trajectory (override with BENCH_OUT / BENCH_LABEL).
bench:
	sh scripts/bench.sh

# benchcheck compares the two newest BENCH_*.json trajectories and
# fails on any shared benchmark whose allocs/op regressed >10% — run it
# after `make bench` to catch allocation regressions before committing.
benchcheck:
	go run ./cmd/benchtrend -check

# loadtest drives a real vpnscoped daemon with concurrent clients and
# reports campaigns/sec, p99 time-to-first-result, and the daemon's
# own queue-depth / slot-wall-p99 gauges scraped from
# /metricsz?format=prom (override with LOADTEST_CAMPAIGNS /
# LOADTEST_CLIENTS).
loadtest:
	sh scripts/loadtest.sh
